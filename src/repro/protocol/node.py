"""One GeoGrid node as asynchronous message handlers.

Each :class:`ProtocolNode` owns at most one region (as primary or
secondary), a *local* neighbor table, and a store of geo-tagged items.
All decisions -- routing, splitting, failover -- use only local state plus
received messages; nothing consults a global view, which is the point of
running the protocol on the simulated network.
"""

from __future__ import annotations

import itertools
import math
import random
import time
import zlib
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import BootstrapError, MembershipError
from repro.geometry import Point, Rect
from repro.bootstrap import BootstrapServer, HostCache
from repro.core.node import Node, NodeAddress
from repro import obs
from repro.obs import causal
from repro.obs.health import HealthScorer, NeighborHealthView
from repro.obs.registry import Histogram
from repro.obs.telemetry import EVENT_SAMPLE, VitalsFrame
from repro.sim.scheduler import EventScheduler
from repro.sim.transport import Message, SimNetwork
from repro.store.spatial import GridIndex, ObjectRecord
from repro.sub import SubIndex, SubRecord
from repro.protocol import messages as m
from repro.protocol import overload
from repro.protocol.reliable import ReliableChannel, RetryPolicy
from repro.protocol.shortcuts import ShortcutCache

#: Application callback for routed payloads arriving at the executor node.
DeliverCallback = Callable[[Point, Any], None]

#: Routed-request kinds whose per-hop forwarding rides the reliable
#: channel.  A store update is the object's only position report -- a
#: dropped hop silently loses it until the next report -- and a
#: subscription registration is the only copy of its lease while being
#: routed -- whereas plain routes, publishes and queries are either
#: retried by the application or repaired by anti-entropy, so hop-by-hop
#: acks would only buy them message overhead.
RELIABLE_ROUTED_KINDS = frozenset({m.STORE_UPDATE, m.SUBSCRIBE})

#: Cap on outstanding client operations tracked for SLO latency; older
#: entries (lost requests that never completed) fall off the LRU.
SLO_PENDING_LIMIT = 1024

_request_ids = itertools.count(1)


def _address_order(address: NodeAddress) -> Tuple[str, int]:
    """Deterministic sort key for address sets.

    ``NodeAddress`` hashes through its ip *string*, so bare set iteration
    order follows ``PYTHONHASHSEED`` -- and any fan-out that iterates a
    set of addresses would emit messages in a per-process order, making
    seeded simulations irreproducible across processes.  Every such
    fan-out sorts with this key first.
    """
    return (address.ip, address.port)


def reset_request_ids() -> None:
    """Rewind the process-wide request-id counter back to 1.

    See :func:`repro.core.query.reset_query_ids`: the test harness calls
    this before each test so lookup/store request ids do not depend on
    how many tests ran earlier in the session.
    """
    global _request_ids
    _request_ids = itertools.count(1)


@dataclass(frozen=True)
class NodeConfig:
    """Protocol timing parameters (virtual time units)."""

    #: Interval of heartbeats between neighbor primaries.
    heartbeat_interval: float = 5.0
    #: Interval of heartbeats inside a dual-peer pair ("higher frequency
    #: than among the primary nodes of different regions", Section 2.3).
    peer_heartbeat_interval: float = 2.0
    #: A peer is suspected after this many missed intervals.  The product
    #: ``peer_heartbeat_interval * failure_timeout_multiplier`` must exceed
    #: one round trip across the service area, or a freshly granted
    #: secondary gets evicted before its first heartbeat can arrive.
    failure_timeout_multiplier: float = 4.0
    #: Primary-to-secondary full state sync period.
    sync_interval: float = 10.0
    #: Period of the local failure-detection sweep.
    check_interval: float = 1.0
    #: Whether joins fill empty secondary slots (dual peer) or always split.
    dual_peer: bool = True
    #: A joiner that has not been granted a region after this long retries
    #: through a fresh entry node (join messages are best-effort like
    #: everything else and can be lost).
    join_retry_interval: float = 10.0
    #: Seeded fractional jitter on ``join_retry_interval``: each retry is
    #: scheduled after ``interval * (1 +- jitter)``.  Keeps a crowd of
    #: joiners orphaned by the same heal/outage from retrying (and
    #: hammering the bootstrap) in lockstep.
    join_retry_jitter: float = 0.25
    #: Length of the sliding window over which served requests are counted
    #: toward the node's workload index.
    stat_interval: float = 10.0
    #: Whether the distributed load adaptation (message-level mechanism
    #: (b): switch primary owners) runs; the paper-scale adaptation study
    #: uses the overlay model, so this is opt-in.
    adaptation_enabled: bool = False
    #: How often an overloaded primary considers proposing a switch.
    adaptation_interval: float = 15.0
    #: Trigger ratio over the lowest neighbor index (paper: sqrt(2)).
    adaptation_trigger_ratio: float = 1.4142135623730951
    #: Whether bystanders arbitrate third-party ownership claims heard in
    #: heartbeat gossip (the PR-2 split-brain witness).  Disabling this is
    #: a *fault-injection knob*: it re-opens the double hole-grant split
    #: brain so the invariant auditor and flight recorder can be exercised
    #: against a real historical failure (see repro.protocol.forensics).
    claim_witness_enabled: bool = True
    #: How many times an unacknowledged join grant is resent before the
    #: joiner is given up on.  A split grant is the only copy of the
    #: handed half's store records while in flight, so one dropped grant
    #: would lose them for good.  ``0`` disables the ack/resend exchange
    #: entirely -- a *fault-injection knob* like ``claim_witness_enabled``,
    #: used by the forensics replay to re-open the historical lost-grant
    #: failure modes.
    grant_resend_attempts: int = 3
    #: How many divergent store buckets one anti-entropy round may pull.
    #: Bounds the repair traffic after a lossy handover; remaining
    #: divergence drains over subsequent sync intervals.
    store_repair_max_buckets: int = 8
    #: Capacity of the adaptive routing shortcut cache: learned
    #: ``(rect, primary, secondary)`` entries for non-neighbor regions,
    #: consulted by the forwarding path under the same strict-progress
    #: rule as plain neighbors.  ``0`` disables the cache entirely --
    #: routing then degenerates to the pure neighbor walk, which forensic
    #: replays rely on for bit-for-bit reproducibility against a journal
    #: recorded without shortcuts.
    shortcut_cache_size: int = 32
    #: Whether critical exchanges (grants, replication deltas, merge-back
    #: retractions, departure handoffs, store-update hops) ride the
    #: reliable request/ack channel.  Disabling it reverts every exchange
    #: to raw fire-and-forget sends -- the ablation/fault-injection knob
    #: the chaos harness and forensic replays use.
    reliable_enabled: bool = True
    #: First-attempt ack deadline of the default reliable policy.
    reliable_timeout: float = 4.0
    #: Total transmissions (first send + retries) per reliable exchange.
    reliable_max_attempts: int = 4
    #: Multiplier applied to the ack deadline per retry.
    reliable_backoff: float = 2.0
    #: Seeded fractional jitter applied to every armed ack deadline.
    reliable_jitter: float = 0.25
    #: Whether the in-band telemetry plane runs: per-node vitals frames,
    #: digest piggybacks on neighbor heartbeats, neighborhood health
    #: views, gray-failure flagging, and client-edge SLO histograms.
    #: Pure observation -- no protocol decision consults it -- so the
    #: knob exists for overhead ablation (``repro bench telemetry``),
    #: not correctness.
    telemetry_enabled: bool = True
    #: Whether a primary that sees a persistently uncovered stretch of
    #: its own perimeter probes it.  Grants born inside an incomplete
    #: neighborhood can leave two adjacent primaries mutually blind --
    #: neither heartbeats the other, so heartbeat gossip (which needs a
    #: third node adjacent to both) can never bridge the gap.  The probe
    #: is routed greedily to a point just outside the gap; whoever
    #: serves that ground installs the prober and answers with a direct
    #: heartbeat, healing both tables.  Needs :attr:`ProtocolNode.bounds`
    #: to tell real gaps from the world edge; disabled (like the other
    #: fault-injection knobs) by forensic replays pinned to historical
    #: message sequences.
    perimeter_probe_enabled: bool = True
    #: Hop budget of one perimeter probe.
    perimeter_probe_ttl: int = 16
    #: Whether the continuous-query subscription plane runs: SUBSCRIBE
    #: routing/fan-out, per-region SubIndex registration + replication,
    #: match-driven NOTIFY push, lease sweeps, and subscription state
    #: riding every structural handoff.  Off, no subscription message is
    #: ever emitted and every touched site reverts to pre-plane behavior.
    sub_enabled: bool = True
    #: Default lease length of a subscription issued without an explicit
    #: duration.
    sub_lease_duration: float = 120.0
    #: Fractional per-(sub, holder) hashed jitter added to lease expiry
    #: before a sweep drops the registration.  Derived from a CRC, not
    #: ``rng``, so sweeps stay byte-reproducible and replicas of one
    #: subscription drain within a bounded, deterministic spread.
    sub_lease_jitter: float = 0.1
    #: Interval at which a subscriber re-asserts each live lease it
    #: originated.  Registrations are soft state like store records: a
    #: region can lose every copy at once (a primary with no standing
    #: secondary crashes), and the renewal re-routes the same record --
    #: version bumped, ``registered_at``/``duration`` untouched, so the
    #: absolute expiry stands -- onto whoever covers the ground now.
    #: Renewal repairs placement; it never extends the lease, so a
    #: subscriber that stops renewing still lapses on schedule.
    sub_renew_interval: float = 30.0
    #: Whether the overload control plane runs: capacity-scaled ingress
    #: admission with priority classes (control > acks > data > queries
    #: > gossip), SHED NACKs with retry-after hints, backpressure
    #: piggybacked on neighbor heartbeats, pressure-aware deflection in
    #: greedy forwarding, and escalation from sustained shedding to the
    #: paper's adaptation mechanisms.  Off, admission never runs, every
    #: heartbeat carries ``pressure=0.0``, and seeded runs are
    #: byte-identical to a build without the plane.
    overload_enabled: bool = False
    #: Minimum ingress admission budget regardless of capacity.  Even a
    #: capacity-1 node must absorb its own control fan-in (heartbeats
    #: from every neighbor, sync traffic from its peer).
    overload_inbox_floor: int = 16
    #: Ingress budget per unit of node capacity; the effective budget is
    #: ``max(floor, scale * capacity)``, so strong servers absorb the
    #: bursts weak nodes shed.
    overload_inbox_scale: float = 4.0
    #: Base back-off carried in SHED NACKs; the hint scales up with how
    #: far past its budget the shedder is.
    overload_retry_after: float = 2.0
    #: A neighbor whose advertised backpressure reaches this fraction of
    #: its budget is considered saturated: greedy forwarding prefers a
    #: calmer strictly-closer neighbor when one exists (never giving up
    #: strict progress toward the target).
    overload_deflect_threshold: float = 0.75
    #: Consecutive stat windows with shedding before an overloaded
    #: primary escalates to the sqrt(2) switch proposal out of schedule.
    #: Shedding buys time; adaptation fixes the cause.
    overload_escalate_windows: int = 2


@dataclass
class OwnedRegion:
    """The region this node currently owns, in one of two roles."""

    rect: Rect
    role: str  # "primary" | "secondary"
    peer: Optional[NodeAddress]
    items: List[Tuple[Point, Any]] = field(default_factory=list)
    #: The location store for this region: the authoritative copy on the
    #: primary, the replica on the secondary.
    store: GridIndex = field(default_factory=GridIndex)
    #: Continuous-query registrations touching this region: authoritative
    #: on the primary, replica on the secondary (promoted on failover).
    subs: SubIndex = field(default_factory=SubIndex)


class ProtocolNode:
    """A GeoGrid middleware instance on one simulated host."""

    def __init__(
        self,
        node: Node,
        network: SimNetwork,
        scheduler: EventScheduler,
        bootstrap: BootstrapServer,
        rng: random.Random,
        config: Optional[NodeConfig] = None,
        on_deliver: Optional[DeliverCallback] = None,
        bounds: Optional[Rect] = None,
    ) -> None:
        self.node = node
        self.network = network
        self.scheduler = scheduler
        self.bootstrap = bootstrap
        self.rng = rng
        self.config = config if config is not None else NodeConfig()
        self.on_deliver = on_deliver
        self.host_cache = HostCache()
        #: The service-area bounds, when known (deployments hand every
        #: node the world rect; hand-built unit fixtures may not).
        #: Perimeter self-repair needs it to tell a real coverage gap
        #: from the world edge and stays off without it.
        self.bounds = bounds

        self.alive = False
        self.joined = False
        self.owned: Optional[OwnedRegion] = None
        self.neighbor_table: Dict[Rect, m.NeighborInfo] = {}
        #: Learned long-range routing entries for non-neighbor regions.
        self.shortcuts = ShortcutCache(self.config.shortcut_cache_size)
        #: The entry node the in-flight join attempt went through; struck
        #: in the host cache when the attempt times out.
        self._join_entry: Optional[NodeAddress] = None
        #: Rects whose owners are all believed dead; this node answers for
        #: them best-effort until a join fills the hole.
        self.caretaker_rects: Set[Rect] = set()
        self.last_seen: Dict[NodeAddress, float] = {}
        self.suspected: Set[NodeAddress] = set()
        #: Recent heartbeat-borne ownership claims (rect -> (info, heard
        #: at)), direct and gossiped alike.  Split-brain owners of one
        #: region can have disjoint neighbor sets, so no single neighbor
        #: table ever holds both claims; this cache lets any bystander
        #: notice the conflict and trigger a confrontation.
        self._claims_heard: Dict[Rect, Tuple[m.NeighborInfo, float]] = {}
        #: Conflicting claim pairs already pointed at each other, with the
        #: time of the last notification (rate limit for the witness).
        self._claims_confronted: Dict[
            Tuple[Rect, NodeAddress, NodeAddress], float
        ] = {}
        #: Who was told about each split we granted (handed rect ->
        #: (recipients, announced at)).  A decline-triggered merge must
        #: retract the announcement from exactly this audience: the table
        #: is pruned to the *kept* half's neighbors at split time, so by
        #: merge time it can have forgotten neighbors of the handed half.
        self._split_announced: Dict[
            Rect, Tuple[Set[NodeAddress], float]
        ] = {}
        #: Secondary's replicated view of the primary's neighbor table.
        self._replicated_neighbors: Tuple[m.NeighborInfo, ...] = ()
        #: Whether this node, as primary, ever shipped a non-empty store
        #: digest.  Once set, empty digests keep flowing too, so a
        #: replica of since-rehomed content converges instead of
        #: diverging silently forever.
        self._store_announced = False
        #: Damping state of perimeter self-repair: the last uncovered
        #: stretch seen ((edge, lo, hi) signature) and for how many
        #: consecutive heartbeat ticks.  A gap must persist two ticks
        #: before it is probed -- transient blindness (an update still in
        #: flight, a neighbor mid-split) heals itself without traffic.
        self._perimeter_gap: Optional[Tuple[str, float, float]] = None
        self._perimeter_gap_ticks = 0

        self.delivered: List[m.RouteDeliveredBody] = []
        self.query_results: Dict[int, List[m.QueryResultBody]] = {}
        self._served_queries: Set[int] = set()
        #: Acknowledged store updates issued from this node.
        self.store_acks: Dict[int, m.StoreAckBody] = {}
        #: Misplaced records re-routed home, awaiting the executor's ack
        #: before the local copy may be dropped (request_id -> id, version).
        self._rehome_pending: Dict[int, Tuple[Any, int]] = {}
        #: Store lookup answers, one entry per answering region.
        self.store_results: Dict[int, List[m.StoreResultBody]] = {}
        self._served_store_lookups: Set[int] = set()
        #: Acknowledged subscription registrations issued from this node.
        self.sub_acks: Dict[int, m.SubAckBody] = {}
        #: Registration requests this node already served (fan-out dedup).
        self._served_subs: Set[int] = set()
        #: Notifications received by this node as a subscriber, in
        #: arrival order after dedup.
        self.notifications: List[m.NotifyBody] = []
        #: Receive-side notification dedup: at-least-once delivery plus
        #: multi-region matches can push the same event more than once.
        self._notify_seen: Set[Tuple[str, Tuple[Any, ...]]] = set()
        #: Sequence counter behind locally issued subscription ids.
        self._sub_seq = itertools.count(1)
        #: Stranded registrations re-routed toward their rect, awaiting
        #: the covering executor's ack before the local copy is dropped
        #: (request id -> (sub id, version); mirrors ``_rehome_pending``).
        self._sub_rehome_pending: Dict[int, Tuple[str, int]] = {}
        #: Live subscriptions this node originated, by sub id -- the
        #: subscriber-side source of truth behind periodic lease
        #: re-assertion (see :meth:`_sub_renewals`).
        self._my_subs: Dict[str, SubRecord] = {}
        #: When each of :attr:`_my_subs` was last (re-)asserted.
        self._my_sub_asserted: Dict[str, float] = {}
        self._timers: List[Any] = []

        #: Requests served in the current statistics window.
        self._window_served = 0
        #: Served-per-time-unit rate measured over the last full window.
        self.load_rate = 0.0
        #: Latest workload statistics gossiped by neighbor primaries:
        #: rect -> (index, capacity).
        self.neighbor_stats: Dict[Rect, Tuple[float, float]] = {}
        #: When each :attr:`neighbor_stats` entry was last refreshed by a
        #: heartbeat.  Entries whose heartbeats stop are expired by the
        #: failure sweep (a crashed neighbor's last-reported load must
        #: not pin switch and deflection decisions forever).
        self._neighbor_stats_at: Dict[Rect, float] = {}
        #: Latest ingress backpressure advertised by neighbor primaries
        #: (rect -> pressure in [0, 1]); only written when the overload
        #: plane is on.  Routing deflects around entries at or above
        #: ``overload_deflect_threshold``.
        self.neighbor_pressure: Dict[Rect, float] = {}
        #: Set while a primary switch we initiated is in flight.
        self._switch_pending = False
        #: The rect this node owned when it proposed its pending switch;
        #: a (possibly retried) accept that arrives after ownership moved
        #: on must not install the stale counterpart state.
        self._switch_proposed_rect: Optional[Rect] = None
        #: Completed primary switches this node took part in.
        self.switches_completed = 0
        #: After a primary switch installs, the counterpart may still emit
        #: heartbeats claiming the region it just handed us (sent before
        #: its own install, still in flight).  Yielding on that stale
        #: first-hand evidence orphans the swapped region, so claims of
        #: exactly ``rect`` from ``counterpart`` are demoted to
        #: confront-grade evidence until the deadline passes:
        #: (counterpart, rect, deadline).
        self._switch_handoff: Optional[Tuple[NodeAddress, Rect, float]] = None

        #: Set between a reliable departure handoff and its confirmation:
        #: the node is no longer alive but its endpoint lingers so the
        #: peer's ack (or the retry budget) can finish the handoff.
        self._draining = False
        #: The reliable request/ack channel critical exchanges ride.
        #: Grants keep their historical cadence (fixed heartbeat-spaced
        #: resends, ``grant_resend_attempts`` retries); everything else
        #: uses the exponential-backoff default policy.
        cfg = self.config
        self.reliable = ReliableChannel(
            address=self.address,
            network=network,
            scheduler=scheduler,
            rng=rng,
            policies={
                m.JOIN_GRANT: RetryPolicy(
                    timeout=cfg.heartbeat_interval,
                    max_attempts=max(1, cfg.grant_resend_attempts + 1),
                    backoff=1.0,
                    jitter=cfg.reliable_jitter,
                ),
            },
            default_policy=RetryPolicy(
                timeout=cfg.reliable_timeout,
                max_attempts=cfg.reliable_max_attempts,
                backoff=cfg.reliable_backoff,
                jitter=cfg.reliable_jitter,
            ),
            enabled=cfg.reliable_enabled,
            is_alive=lambda: self.alive or self._draining,
        )

        #: The in-band telemetry plane (repro.obs.telemetry/.health):
        #: a vitals frame fed by cheap hooks, a decaying neighborhood
        #: health view fed by heartbeat digests and reliable-channel
        #: evidence, and client-edge SLO histograms.  Pure observation:
        #: nothing protocol-visible branches on any of it, and none of
        #: it consumes ``self.rng``, so seeded runs stay byte-identical
        #: with the plane on or off.
        self._telemetry = cfg.telemetry_enabled
        #: Whether the continuous-query subscription plane runs (checked
        #: at every touched site; off, no subscription message is sent).
        self._sub = cfg.sub_enabled
        #: Whether the overload control plane runs (checked at every
        #: touched site; off, admission never sheds, heartbeats carry
        #: ``pressure=0.0``, and no SHED message is ever sent).
        self._overload = cfg.overload_enabled
        #: Capacity-scaled ingress budget and the per-kind admission
        #: depth cut-offs derived from it (see repro.protocol.overload).
        self._overload_budget = overload.admission_budget(
            self.node.capacity,
            cfg.overload_inbox_floor,
            cfg.overload_inbox_scale,
        )
        self._admit_limits = overload.admission_limits(self._overload_budget)
        #: Messages shed by ingress admission (total and by wire kind).
        self.sheds = 0
        self.shed_by_kind: Dict[str, int] = {}
        #: Sheds in the current statistics window / consecutive windows
        #: that shed -- the escalation signal (see _roll_stat_window).
        self._shed_window = 0
        self._shed_streak = 0
        #: SHED NACKs received, by shed wire kind, plus a bounded log of
        #: the most recent notices (kind, retry_after, depth).
        self.shed_received: Dict[str, int] = {}
        self.shed_notices: List[Tuple[str, float, int]] = []
        #: Forwarding decisions deflected around a saturated neighbor.
        self.deflections = 0
        self.vitals = VitalsFrame()
        self.health = NeighborHealthView(
            expected_interval=cfg.heartbeat_interval,
            owner=self.address,
            scorer=HealthScorer(
                seed=zlib.crc32(str(self.address).encode("utf-8"))
            ),
        )
        #: Divergent-bucket count from the last anti-entropy diff this
        #: node ran as secondary (0 = replica converged).
        self._anti_entropy_debt = 0
        #: Per-destination consecutive heartbeat-tick send streaks, the
        #: attestation stamped on outgoing heartbeats (see
        #: ``HeartbeatBody.vitals_streak``).
        self._hb_streak: Dict[NodeAddress, int] = {}
        #: Outstanding client operations: request_id -> (SLO name,
        #: started at).  A plain insertion-ordered dict doubles as the
        #: bounded FIFO (evict via ``next(iter(...))``): cheaper per
        #: operation than an OrderedDict on this client-edge hot path.
        self._slo_pending: Dict[int, Tuple[str, float]] = {}
        #: Client-edge SLO reservoir histograms, keyed by SLO name.
        self._slo: Dict[str, Histogram] = {}
        if self._telemetry:
            self.reliable.on_retry_observed = self._note_retry
            self.reliable.on_dead_letter_observed = self._note_dead_letter
            self.reliable.on_ack_observed = self._note_ack_latency

        self._join_attempt = 0
        self._handlers = {
            m.JOIN_REQUEST: self._on_join_request,
            m.JOIN_GRANT: self._on_join_grant,
            m.GRANT_DECLINE: self._on_grant_decline,
            m.NEIGHBOR_UPDATE: self._on_neighbor_update,
            m.HEARTBEAT: self._on_heartbeat,
            m.SYNC_STATE: self._on_sync_state,
            m.DEPART: self._on_depart,
            m.SECONDARY_RELEASED: self._on_secondary_released,
            m.SWITCH_REQUEST: self._on_switch_request,
            m.SWITCH_ACCEPT: self._on_switch_accept,
            m.SWITCH_REJECT: self._on_switch_reject,
            m.ROUTE: self._on_route,
            m.ROUTE_DELIVERED: self._on_route_delivered,
            m.QUERY: self._on_query,
            m.QUERY_FANOUT: self._on_query_fanout,
            m.QUERY_RESULT: self._on_query_result,
            m.PUBLISH: self._on_publish,
            m.REPLICATE: self._on_replicate,
            m.STORE_UPDATE: self._on_store_update,
            m.STORE_REMOVE: self._on_store_remove,
            m.STORE_ACK: self._on_store_ack,
            m.STORE_LOOKUP: self._on_store_lookup,
            m.STORE_FANOUT: self._on_store_fanout,
            m.STORE_RESULT: self._on_store_result,
            m.STORE_REPLICATE: self._on_store_replicate,
            m.STORE_SYNC: self._on_store_sync,
            m.STORE_PULL: self._on_store_pull,
            m.STORE_REPAIR: self._on_store_repair,
            m.SHORTCUT_HOP: self._on_shortcut_hop,
            m.MISROUTE: self._on_misroute,
            m.RELIABLE: self._on_reliable,
            m.RELIABLE_ACK: self._on_reliable_ack,
            m.PERIMETER_PROBE: self._on_perimeter_probe,
            m.SUBSCRIBE: self._on_subscribe,
            m.SUB_FANOUT: self._on_sub_fanout,
            m.SUB_ACK: self._on_sub_ack,
            m.SUB_REPLICATE: self._on_sub_replicate,
            m.SUB_SYNC: self._on_sub_sync,
            m.NOTIFY: self._on_notify,
            m.SHED: self._on_shed,
        }
        #: Handlers a shortcut hop (or its MISROUTE bounce) may wrap: the
        #: routed-request subset of the protocol, dispatched by inner kind
        #: on the unwrapped body.
        self._routed_handlers = {
            m.JOIN_REQUEST: self._handle_join_request,
            m.ROUTE: self._handle_route,
            m.PUBLISH: self._handle_publish,
            m.QUERY: self._handle_query,
            m.STORE_UPDATE: self._handle_store_update,
            m.STORE_REMOVE: self._handle_store_remove,
            m.STORE_LOOKUP: self._handle_store_lookup,
            m.SUBSCRIBE: self._handle_subscribe,
        }

    # ------------------------------------------------------------------
    # Identity helpers
    # ------------------------------------------------------------------
    @property
    def address(self) -> NodeAddress:
        """This node's endpoint address."""
        return self.node.address

    def is_primary(self) -> bool:
        """Whether this node currently serves a region as primary."""
        return self.owned is not None and self.owned.role == "primary"

    def is_secondary(self) -> bool:
        """Whether this node currently backs a region as secondary."""
        return self.owned is not None and self.owned.role == "secondary"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start_as_first(self, bounds: Rect) -> None:
        """Bootstrap the network: this node owns the whole plane."""
        self._attach()
        self.bounds = bounds
        self.owned = OwnedRegion(rect=bounds, role="primary", peer=None)
        self.joined = True
        self._start_timers()

    def start_join(self, entry: Optional[NodeAddress] = None) -> None:
        """Begin the three-step join of Section 2.1.

        The coordinate comes from the node itself (step 1); the entry node
        comes from the host cache or the bootstrap server (step 2); the
        join request is then routed like a query (step 3).
        """
        if not self.alive:
            self._attach()
        if entry is None:
            entry = self.host_cache.pick_entry(self.rng)
        if entry is None:
            entries = self.bootstrap.sample_entries(
                self.rng, exclude=self.address
            )
            self.host_cache.remember_all(entries)
            entry = self.rng.choice(entries)
        self._join_entry = entry
        self._join_attempt += 1
        body = m.JoinRequestBody(
            joiner=self.address, coord=self.node.coord,
            capacity=self.node.capacity, nonce=self._join_attempt,
        )
        # The whole join -- request, retries, and the eventual grant -- is
        # one causal trace rooted here (a retry is a *child* of the span
        # that armed it, so the trace shows attempt lineage).
        ctx = causal.operation(
            "join_start",
            joiner=str(self.address),
            coord=str(self.node.coord),
            attempt=self._join_attempt,
            entry=str(entry),
        )
        with causal.using(ctx):
            self.network.send(self.address, entry, m.JOIN_REQUEST, body)
            self.scheduler.after(
                self._jittered_join_delay(), self._retry_join
            )

    def _jittered_join_delay(self) -> float:
        """The next join-retry delay, with seeded anti-herd jitter.

        Joiners orphaned together (a healed partition, a regional outage)
        would otherwise all retry exactly ``join_retry_interval`` apart
        forever, stampeding the bootstrap and the entry nodes in lockstep
        waves; each node's seeded rng desynchronizes them.
        """
        base = self.config.join_retry_interval
        jitter = self.config.join_retry_jitter
        if jitter <= 0.0:
            return base
        return base * (1.0 + self.rng.uniform(-jitter, jitter))

    def _retry_join(self) -> None:
        """Re-issue the join through a fresh entry if still unjoined."""
        if not self.alive or self.joined:
            return
        if self._join_entry is not None:
            # The attempt through that entry produced nothing within the
            # retry interval; strike it so a dead cached address stops
            # being re-picked forever.
            if self.host_cache.penalize(self._join_entry):
                obs.inc("bootstrap.hostcache.evicted")
            self._join_entry = None
        try:
            self.start_join()
        except BootstrapError:
            # The bootstrap registry emptied out from under us; try again
            # later rather than giving up.
            self.scheduler.after(
                self._jittered_join_delay(), self._retry_join
            )

    def depart(self) -> None:
        """Graceful departure with state handoff.

        The handoff message is the only copy of this primary's items and
        store records once we stop serving, so it rides the reliable
        channel: the node drops into a *draining* state -- dead to the
        protocol, timers cancelled, struck from the bootstrap -- but its
        endpoint lingers until the peer's ack (or the retry budget)
        confirms the handoff, and only then leaves the network for good.
        """
        if not self.alive:
            raise MembershipError(f"node {self.node.node_id} is not running")
        handoff: Optional[Tuple[NodeAddress, m.DepartBody]] = None
        if self.owned is not None and self.owned.peer is not None:
            if len(self.owned.store):
                causal.annotate(
                    "store_handover",
                    event="depart",
                    source=str(self.address),
                    target=str(self.owned.peer),
                    objects=len(self.owned.store),
                )
                obs.inc("store.node.migrated", len(self.owned.store))
            handoff = (
                self.owned.peer,
                m.DepartBody(
                    rect=self.owned.rect,
                    items=tuple(self.owned.items),
                    objects=tuple(self.owned.store.records()),
                    subscriptions=tuple(self.owned.subs.records()),
                ),
            )
        if handoff is None or not self.config.reliable_enabled:
            if handoff is not None:
                self.network.send(
                    self.address, handoff[0], m.DEPART, handoff[1]
                )
            self._detach(graceful=True)
            return
        peer, body = handoff
        self._begin_drain()
        self.reliable.send(
            peer, m.DEPART, body,
            on_ack=self._finish_drain, on_give_up=self._finish_drain,
        )

    def _begin_drain(self) -> None:
        """Stop being a protocol participant; keep the endpoint for acks."""
        self._draining = True
        self.alive = False
        self.joined = False
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        self.bootstrap.deregister(self.address)

    def _finish_drain(self) -> None:
        """The handoff concluded (acked or given up): leave the network."""
        if not self._draining:
            return
        self._draining = False
        self.reliable.cancel_all()
        self.network.deregister(self.address)

    def crash(self) -> None:
        """Abrupt failure: no goodbye messages, peers must detect it."""
        if not self.alive:
            raise MembershipError(f"node {self.node.node_id} is not running")
        self._detach(graceful=False)

    def _attach(self) -> None:
        self._draining = False
        self.network.register(self.address, self.node.coord, self._receive)
        if self._telemetry:
            self.network.set_send_frame(self.address, self.vitals)
        self.bootstrap.register(self.address)
        self.alive = True

    def _detach(self, graceful: bool) -> None:
        self.alive = False
        self.joined = False
        # A revived node must not claim it was heartbeating through its
        # outage: streaks restart so receivers re-baseline the gap.
        self._hb_streak.clear()
        self.network.clear_send_frame(self.address)
        self.reliable.cancel_all()
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        if graceful:
            self.network.deregister(self.address)
            self.bootstrap.deregister(self.address)
        else:
            self.network.crash(self.address)

    def _start_timers(self) -> None:
        cfg = self.config
        self._timers.append(
            self.scheduler.every(
                cfg.heartbeat_interval, self._send_neighbor_heartbeats,
                jitter=cfg.heartbeat_interval * 0.1, rng=self.rng,
            )
        )
        self._timers.append(
            self.scheduler.every(
                cfg.peer_heartbeat_interval, self._send_peer_heartbeat,
                jitter=cfg.peer_heartbeat_interval * 0.1, rng=self.rng,
            )
        )
        self._timers.append(
            self.scheduler.every(cfg.sync_interval, self._send_sync)
        )
        self._timers.append(
            self.scheduler.every(cfg.check_interval, self._check_failures)
        )
        self._timers.append(
            self.scheduler.every(cfg.stat_interval, self._roll_stat_window)
        )
        if cfg.adaptation_enabled:
            self._timers.append(
                self.scheduler.every(
                    cfg.adaptation_interval, self._consider_switch,
                    jitter=cfg.adaptation_interval * 0.2, rng=self.rng,
                )
            )

    # ------------------------------------------------------------------
    # Workload statistics (Section 2.4: periodic stat exchange)
    # ------------------------------------------------------------------
    @property
    def workload_index(self) -> float:
        """Requests served per time unit, normalized by capacity."""
        return self.load_rate / self.node.capacity

    def _roll_stat_window(self) -> None:
        if not self.alive:
            return
        self.load_rate = self._window_served / self.config.stat_interval
        self._window_served = 0
        if self._overload:
            # Escalation: shedding buys time, adaptation fixes the
            # cause.  A primary that shed in ``overload_escalate_windows``
            # consecutive stat windows is persistently over budget --
            # bring the sqrt(2) switch check forward instead of waiting
            # out the adaptation timer.  _consider_switch re-applies its
            # own guards (alive, primary, trigger ratio, no pending
            # proposal), so an early call can only propose a switch the
            # periodic check would also have proposed.
            if self._shed_window:
                self._shed_streak += 1
                if (
                    self.config.adaptation_enabled
                    and self._shed_streak
                    >= self.config.overload_escalate_windows
                ):
                    obs.inc("overload.escalated")
                    causal.annotate(
                        "overload_escalated",
                        node=str(self.address),
                        sheds=self._shed_window,
                        streak=self._shed_streak,
                    )
                    self._shed_streak = 0
                    self._consider_switch()
            else:
                self._shed_streak = 0
            self._shed_window = 0

    # ------------------------------------------------------------------
    # Telemetry plane (vitals, health, SLO latency)
    # ------------------------------------------------------------------
    def _note_retry(self, destination: NodeAddress, kind: str) -> None:
        """Reliable-channel observer: a retransmit toward ``destination``."""
        self.vitals.on_retry()
        if kind == m.NOTIFY:
            self.vitals.on_notify_retry()
        self.health.note_retry(destination, self.scheduler.now)

    def _note_dead_letter(self, destination: NodeAddress, kind: str) -> None:
        """Reliable-channel observer: an exchange was abandoned."""
        self.vitals.on_dead_letter()
        if kind == m.NOTIFY:
            self.vitals.on_notify_dead_letter()
        self.health.note_dead_letter(destination, self.scheduler.now)

    def _note_ack_latency(self, destination: NodeAddress, rtt: float) -> None:
        """Reliable-channel observer: a confirmed exchange's round-trip."""
        # Inlined EWMA for the common case (entry already tracked): this
        # fires on every confirmed reliable exchange, and the full
        # note_ack() path costs two extra calls plus a scheduler.now
        # property read it never uses.
        health = self.health
        entry = health.peers.get(destination)
        if entry is None:
            health.note_ack(destination, rtt, self.scheduler.now)
        elif entry.ack_ewma == 0.0:
            entry.ack_ewma = rtt
        else:
            entry.ack_ewma += health.gap_alpha * (rtt - entry.ack_ewma)

    def _slo_start(self, request_id: int, name: str) -> None:
        """Mark the client-edge start of operation ``request_id``."""
        if not self._telemetry:
            return
        # scheduler._now read directly: this and _slo_finish run on every
        # client operation, and the ``now`` property is pure overhead here.
        self._slo_pending[request_id] = (name, self.scheduler._now)
        while len(self._slo_pending) > SLO_PENDING_LIMIT:
            del self._slo_pending[next(iter(self._slo_pending))]

    def _slo_finish(self, request_id: int) -> None:
        """Record the SLO latency of a completing operation.

        Only the *first* completion counts (a fanned-out lookup answers
        once per region; the SLO is time-to-first-answer).  Unknown ids
        -- completions of operations issued elsewhere, or pushed off the
        pending LRU -- are ignored.
        """
        if not self._telemetry:
            return
        entry = self._slo_pending.pop(request_id, None)
        if entry is None:
            return
        name, started = entry
        self._slo_observe(name, self.scheduler._now - started)

    def _slo_observe(self, name: str, elapsed: float) -> None:
        """Fold one latency sample into the named SLO histogram."""
        histogram = self._slo.get(name)
        if histogram is None:
            histogram = Histogram(name, reservoir=512)
            self._slo[name] = histogram
        histogram.observe(elapsed)
        obs.observe(name, elapsed)

    def slo_histograms(self) -> Dict[str, Histogram]:
        """This node's client-edge SLO histograms (may be empty)."""
        return dict(self._slo)

    def health_flags(self) -> List[NodeAddress]:
        """Peers this node's health view currently calls gray.

        Filters peers the classic failure detector already suspects: a
        suspected peer is (believed) *dead*, which is the opposite
        diagnosis of gray (alive but quietly degraded), and routing
        already avoids it.
        """
        if not self._telemetry or not self.alive:
            return []
        return [
            address
            for address in self.health.flags(self.scheduler.now)
            if address not in self.suspected
        ]

    # ------------------------------------------------------------------
    # Application API
    # ------------------------------------------------------------------
    def send_to_point(self, target: Point, payload: Any) -> int:
        """Route ``payload`` to the node owning ``target``.

        Returns the request id; the acknowledgment lands in
        :attr:`delivered` when it comes back.
        """
        request_id = next(_request_ids)
        self._slo_start(request_id, "slo.route.completion")
        body = m.RouteBody(
            origin=self.address, target=target, payload=payload,
            request_id=request_id,
        )
        ctx = causal.operation(
            "route_request",
            origin=str(self.address),
            target=str(target),
            request_id=request_id,
        )
        with causal.using(ctx):
            self._handle_route(body)
        return request_id

    def publish(self, point: Point, item: Any) -> None:
        """Store a geo-tagged item at the region covering ``point``."""
        body = m.PublishBody(
            origin=self.address, point=point, item=item,
            event_id=next(_request_ids),
        )
        ctx = causal.operation(
            "publish", origin=str(self.address), point=str(point)
        )
        with causal.using(ctx):
            self._handle_publish(body)

    def query_rect(self, rect: Rect) -> int:
        """Issue a location query over ``rect``.

        Results accumulate under the returned request id in
        :attr:`query_results`, one entry per answering region.
        """
        request_id = next(_request_ids)
        body = m.QueryBody(origin=self.address, rect=rect, request_id=request_id)
        ctx = causal.operation(
            "query_rect",
            origin=str(self.address),
            rect=str(rect),
            request_id=request_id,
        )
        with causal.using(ctx):
            self._handle_query(body)
        return request_id

    def store_update(
        self,
        object_id: Any,
        point: Point,
        payload: Any = None,
        version: int = 0,
        prev_point: Optional[Point] = None,
    ) -> int:
        """Report a moving object's position into the location store.

        The update routes greedily to the region covering ``point``; the
        executor stores it, replicates it to the dual-peer secondary, and
        acknowledges (the ack lands in :attr:`store_acks`).  Pass the
        previously reported position as ``prev_point`` so the stale copy
        is evicted when the object crossed a region boundary.  Returns
        the request id.
        """
        request_id = next(_request_ids)
        self._slo_start(request_id, "slo.store.update_commit")
        record = ObjectRecord(
            object_id=object_id, point=point, payload=payload, version=version
        )
        body = m.StoreUpdateBody(
            origin=self.address, record=record, request_id=request_id,
            prev_point=prev_point,
        )
        ctx = causal.operation(
            "store_update",
            origin=str(self.address),
            object_id=str(object_id),
            point=str(point),
            version=version,
            request_id=request_id,
        )
        with causal.using(ctx):
            self._handle_store_update(body)
        return request_id

    def store_lookup(self, rect: Rect) -> int:
        """Issue a range lookup over the location store.

        Answers accumulate under the returned request id in
        :attr:`store_results`, one entry per answering region (primary or,
        when the primary is unreachable, its secondary replica).
        """
        request_id = next(_request_ids)
        self._slo_start(request_id, "slo.store.lookup")
        body = m.StoreLookupBody(
            origin=self.address, rect=rect, request_id=request_id
        )
        ctx = causal.operation(
            "store_lookup",
            origin=str(self.address),
            rect=str(rect),
            request_id=request_id,
        )
        with causal.using(ctx):
            self._handle_store_lookup(body)
        return request_id

    def subscribe(
        self,
        rect: Rect,
        duration: Optional[float] = None,
        sub_id: Optional[str] = None,
        version: int = 0,
    ) -> Tuple[int, str]:
        """Register a continuous query over ``rect``.

        The registration routes greedily to the rect's center and fans
        out to every touching region; each covering primary registers it
        (and replicates to its secondary) and pushes a NOTIFY back here
        for every matching store update or publish until the lease runs
        out.  Re-issue with the same ``sub_id`` and a higher ``version``
        to renew.  Acks land in :attr:`sub_acks` (one per covering
        region), notifications in :attr:`notifications`.  Returns
        ``(request_id, sub_id)``.
        """
        if not self._sub:
            raise RuntimeError(
                "the subscription plane is disabled (NodeConfig.sub_enabled)"
            )
        if duration is None:
            duration = self.config.sub_lease_duration
        if sub_id is None:
            sub_id = f"{self.node.node_id}/{next(self._sub_seq)}"
        request_id = next(_request_ids)
        self._slo_start(request_id, "slo.sub.register")
        record = SubRecord(
            sub_id=sub_id,
            rect=rect,
            subscriber=self.address,
            registered_at=self.scheduler.now,
            duration=duration,
            version=version,
        )
        self._my_subs[sub_id] = record
        self._my_sub_asserted[sub_id] = self.scheduler.now
        body = m.SubscribeBody(
            origin=self.address, record=record, request_id=request_id
        )
        ctx = causal.operation(
            "subscribe",
            origin=str(self.address),
            rect=str(rect),
            sub_id=sub_id,
            request_id=request_id,
        )
        with causal.using(ctx):
            self._handle_subscribe(body)
        return request_id, sub_id

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def _receive(self, message: Message) -> None:
        if not self.alive:
            if self._draining and message.kind == m.RELIABLE_ACK:
                # The ack confirming our departure handoff (the one
                # message a draining endpoint still cares about).
                self._on_reliable_ack(message)
            return
        self.last_seen[message.source] = self.scheduler.now
        self.suspected.discard(message.source)
        if self._overload and not self._overload_admit(message):
            return
        handler = self._handlers.get(message.kind)
        if handler is None:
            return
        if self._telemetry:
            # Ingress accounting, inlining VitalsFrame.on_recv: this is
            # the hottest telemetry touchpoint (every delivered
            # message), so the common path is a bare countdown tick --
            # exact receive totals are recovered from the countdown (see
            # EVENT_SAMPLE), while per-kind attribution, the accounting
            # bookkeeping and the two perf_counter handler-timing calls
            # are all paid only on the sampled 1-in-N dispatch.
            # Wall-clock values are display-only (digests, dashboards);
            # the protocol never branches on them, so determinism of
            # seeded runs is unaffected.
            vitals = self.vitals
            n = vitals.profile_countdown - 1
            if n:
                vitals.profile_countdown = n
                handler(message)
            else:
                vitals.profile_countdown = EVENT_SAMPLE
                vitals._recv_accounted += EVENT_SAMPLE
                kind = message.kind
                vitals.recv_by_kind[kind] += EVENT_SAMPLE
                started = time.perf_counter()
                try:
                    handler(message)
                finally:
                    vitals.on_handler(kind, time.perf_counter() - started)
        else:
            handler(message)

    def _on_reliable(self, message: Message) -> None:
        """Receiver side of a reliable envelope: ack, dedup, dispatch."""
        self.reliable.on_receive(message, self._dispatch_reliable)

    def _dispatch_reliable(
        self, kind: str, body: Any, envelope: Message
    ) -> None:
        """Deliver an unwrapped reliable payload as if it arrived raw."""
        handler = self._handlers.get(kind)
        if handler is None:
            return
        handler(
            Message(
                source=envelope.source,
                destination=envelope.destination,
                kind=kind,
                body=body,
                sent_at=envelope.sent_at,
                msg_id=envelope.msg_id,
                span=envelope.span,
            )
        )

    def _on_reliable_ack(self, message: Message) -> None:
        body: m.ReliableAckBody = message.body
        self.reliable.on_ack(message.source, body.nonce)

    def _send_critical(self, destination: NodeAddress, kind: str, body: Any,
                       on_ack: Optional[Callable[[], None]] = None,
                       on_give_up: Optional[Callable[[], None]] = None) -> None:
        """Ship one critical exchange over the reliable channel."""
        self.reliable.send(
            destination, kind, body, on_ack=on_ack, on_give_up=on_give_up
        )

    # ------------------------------------------------------------------
    # Ingress admission (overload control plane)
    # ------------------------------------------------------------------
    def _overload_admit(self, message: Message) -> bool:
        """Whether ``message`` clears the capacity-scaled ingress budget.

        Control traffic and reliability acks always pass (their cut-offs
        are simply absent from the limits map); sheddable classes are cut
        off when the node's current queue depth reaches their fraction of
        the budget -- gossip first, then queries, then data.  Envelopes
        are classed by their unwrapped payload, so a reliable-wrapped
        JOIN_GRANT is still control and a shortcut-hopped STORE_UPDATE
        is still data.  Deterministic: depends only on queue depth and
        kind, never on ``self.rng``.
        """
        kind = message.kind
        body = message.body
        if kind == m.RELIABLE:
            kind = body.kind
            body = body.body
        if kind in (m.SHORTCUT_HOP, m.MISROUTE):
            inner = getattr(body, "kind", None)
            if inner is not None:
                kind = inner
        limit = self._admit_limits.get(kind)
        if limit is None:
            return True
        depth = self.network.in_flight_to(self.address)
        if depth < limit:
            return True
        self._overload_shed(message, kind, body, depth)
        return False

    def _overload_shed(
        self, message: Message, kind: str, body: Any, depth: int
    ) -> None:
        """Account one shed and NACK the origin when it can be told.

        ``kind``/``body`` are the unwrapped payload (see
        :meth:`_overload_admit`).  Only raw requests naming an origin
        get a SHED NACK; reliable-wrapped payloads are shed silently --
        not acking the envelope leaves the sender's retry/backoff
        schedule in charge, which *is* their retry-after mechanism.
        """
        self.sheds += 1
        self._shed_window += 1
        self.shed_by_kind[kind] = self.shed_by_kind.get(kind, 0) + 1
        obs.inc(f"overload.shed.{kind}")
        obs.inc("overload.shed")
        causal.annotate(
            "overload_shed", node=str(self.address), kind=kind, depth=depth
        )
        if message.kind == m.RELIABLE:
            return
        origin = getattr(body, "origin", None)
        request_id = getattr(body, "request_id", None)
        if (
            origin is None
            or not isinstance(request_id, int)
            or origin == self.address
        ):
            return
        retry_after = self.config.overload_retry_after * (
            1.0 + depth / self._overload_budget
        )
        self.network.send(
            self.address,
            origin,
            m.SHED,
            m.ShedBody(
                kind=kind,
                request_id=request_id,
                retry_after=retry_after,
                depth=depth,
            ),
        )
        obs.inc("overload.shed.nack")

    def _on_shed(self, message: Message) -> None:
        """A peer refused our request at admission; close the books.

        The notice resolves the pending SLO entry (the client now has a
        definitive answer -- "try later" -- rather than a timeout), and
        the retry-after hint is surfaced to the application through
        :attr:`shed_notices`; this layer never re-issues requests on its
        own.
        """
        body: m.ShedBody = message.body
        self.shed_received[body.kind] = (
            self.shed_received.get(body.kind, 0) + 1
        )
        self.shed_notices.append((body.kind, body.retry_after, body.depth))
        if len(self.shed_notices) > 64:
            del self.shed_notices[0]
        obs.inc("overload.shed.received")
        entry = self._slo_pending.pop(body.request_id, None)
        if entry is not None:
            _, started = entry
            self._slo_observe(
                "slo.shed.notice", self.scheduler.now - started
            )

    # ------------------------------------------------------------------
    # Routing primitive
    # ------------------------------------------------------------------
    def _covers(self, rect: Rect, point: Point) -> bool:
        """Closed coverage test used by the protocol layer.

        Protocol nodes do not know the global bounds, so they cannot apply
        the overlay model's open-low-edge rule with border closing; closed
        coverage means a point exactly on a shared edge may be claimed by
        whichever owner sees the request first, which is harmless (the
        executor set for such measure-zero points is ambiguous anyway).
        """
        return rect.covers(point, closed_low_x=True, closed_low_y=True)

    def _owns_point(self, point: Point) -> bool:
        return (
            self.owned is not None
            and self.owned.role == "primary"
            and self._covers(self.owned.rect, point)
        )

    def _caretaker_for(self, point: Point) -> Optional[Rect]:
        for rect in self.caretaker_rects:
            if self._covers(rect, point):
                return rect
        return None

    def _live_endpoint(self, info: m.NeighborInfo) -> Optional[NodeAddress]:
        if info.primary not in self.suspected:
            return info.primary
        if info.secondary is not None and info.secondary not in self.suspected:
            return info.secondary
        return None

    # ------------------------------------------------------------------
    # Shortcut-aware forwarding
    # ------------------------------------------------------------------
    def _route_forward(self, kind: str, body: Any, target: Point) -> bool:
        """Forward a routed request one hop toward ``target``.

        Considers direct neighbors and cached shortcut entries under the
        same strict-progress rule (every hop must be strictly closer to
        the target than our own region, so greedy termination and the
        executor invariant are untouched).  A shortcut is taken only when
        it beats the best *neighbor* candidate, and travels wrapped in a
        :class:`~repro.protocol.messages.ShortcutHopBody` so a stale
        entry can be bounced back as a MISROUTE.

        Returns ``True`` when the message was sent; ``False`` means no
        candidate makes strict progress and the caller must answer
        locally (the existing executor/border semantics).
        """
        if self.owned is None:
            return False
        own_distance = self.owned.rect.distance_to_point(target)
        best_address: Optional[NodeAddress] = None
        best_distance = own_distance
        # Backpressure-aware deflection (overload plane): alongside the
        # pure-greedy best, track the best *calm* candidate -- strictly
        # closer than us, but advertising pressure below the saturation
        # threshold.  Same strict-progress rule, so greedy termination
        # holds whichever one we pick.
        deflect = self._overload
        calm_address: Optional[NodeAddress] = None
        calm_distance = own_distance
        threshold = self.config.overload_deflect_threshold
        for info in self.neighbor_table.values():
            endpoint = self._live_endpoint(info)
            if endpoint is None or endpoint == self.address:
                # A stale entry naming ourselves is never a hop.
                continue
            distance = info.rect.distance_to_point(target)
            if distance < best_distance - 1e-12:
                best_distance = distance
                best_address = endpoint
            if (
                deflect
                and distance < calm_distance - 1e-12
                and self.neighbor_pressure.get(info.rect, 0.0) < threshold
            ):
                calm_distance = distance
                calm_address = endpoint
        if self.shortcuts.enabled:
            shortcut = self.shortcuts.best(target, better_than=best_distance)
            if shortcut is not None:
                endpoint = self._live_endpoint(shortcut)
                if endpoint is not None and endpoint != self.address:
                    self.shortcuts.touch(shortcut.rect)
                    self.shortcuts.hits += 1
                    if self._telemetry:
                        # Inlined VitalsFrame.on_shortcut(True): runs on
                        # every shortcut routing decision.
                        vitals = self.vitals
                        vitals.shortcut_hits += 1
                        vitals._win_shortcut_hits += 1
                    obs.inc("routing.shortcut.hit")
                    causal.annotate(
                        "shortcut_hop",
                        sender=str(self.address),
                        kind=kind,
                        rect=str(shortcut.rect),
                        endpoint=str(endpoint),
                    )
                    envelope = m.ShortcutHopBody(
                        kind=kind,
                        body=body.forwarded(),
                        target=target,
                        claimed_rect=shortcut.rect,
                        sender_distance=own_distance,
                    )
                    self._send_hop(
                        endpoint, m.SHORTCUT_HOP, envelope, inner_kind=kind
                    )
                    return True
        if best_address is None:
            return False
        if deflect and calm_address is not None and calm_address != best_address:
            # The greedy best is saturated but a calmer strictly-closer
            # neighbor exists: route around the hotspot.  (When the
            # greedy best is itself calm, calm == best -- both are the
            # minimum over the same candidate set -- so this fires only
            # when deflection actually changes the decision.)
            best_address = calm_address
            self.deflections += 1
            obs.inc("overload.deflect")
        if self.shortcuts.enabled:
            self.shortcuts.misses += 1
            if self._telemetry:
                # Inlined VitalsFrame.on_shortcut(False).
                vitals = self.vitals
                vitals.shortcut_misses += 1
                vitals._win_shortcut_misses += 1
            obs.inc("routing.shortcut.miss")
        self._send_hop(best_address, kind, body.forwarded(), inner_kind=kind)
        return True

    def _on_shortcut_hop(self, message: Message) -> None:
        """Receiver side of a shortcut hop: serve, keep routing, or NACK.

        The wrapped request is dispatched locally when this node serves
        ``target`` (owner or caretaker) or still makes strict progress on
        the sender's distance -- any such hop preserves the greedy bound.
        Otherwise the sender's cache entry is stale *and* useless, so the
        request bounces back as a MISROUTE carrying our actual claim and
        a covering suggestion, repairing the sender's cache.
        """
        body: m.ShortcutHopBody = message.body
        handler = self._routed_handlers.get(body.kind)
        if handler is None:
            return
        if self.owned is not None:
            serves = (
                self._owns_point(body.target)
                or self._caretaker_for(body.target) is not None
            )
            progress = (
                self.owned.rect.distance_to_point(body.target)
                < body.sender_distance - 1e-12
            )
            if serves or progress:
                handler(body.body)
                return
        causal.annotate(
            "shortcut_misroute",
            receiver=str(self.address),
            kind=body.kind,
            claimed=str(body.claimed_rect),
        )
        actual: Optional[m.NeighborInfo] = None
        if self.owned is not None and (
            self.owned.role == "primary" or self.owned.peer is not None
        ):
            actual = self._my_info()
        suggestion: Optional[m.NeighborInfo] = None
        for info in self.neighbor_table.values():
            if self._covers(info.rect, body.target):
                suggestion = info
                break
        nack = m.MisrouteBody(
            kind=body.kind,
            body=body.body,
            target=body.target,
            claimed_rect=body.claimed_rect,
            actual=actual,
            suggestion=suggestion,
        )
        # A critical request already acked at this hop would be lost for
        # good if its bounce dropped, so the bounce is itself reliable.
        self._send_hop(message.source, m.MISROUTE, nack, inner_kind=body.kind)

    def _on_misroute(self, message: Message) -> None:
        """Sender side of the repair: fix the cache, re-route the request.

        The stale entry is dropped (each misroute evicts at least one
        cached rect, so repeated bounces are bounded by the cache size),
        the receiver's fresh claims are learned, and the bounced request
        re-enters the normal forwarding path -- which now falls back to
        the plain neighbor walk unless a *different* shortcut helps.
        """
        body: m.MisrouteBody = message.body
        self.shortcuts.repairs += 1
        obs.inc("routing.shortcut.repair")
        self.shortcuts.invalidate_rect(body.claimed_rect)
        if body.actual is not None:
            self._learn_shortcut(body.actual)
        if body.suggestion is not None:
            self._learn_shortcut(body.suggestion)
        causal.annotate(
            "shortcut_repaired",
            sender=str(self.address),
            kind=body.kind,
            claimed=str(body.claimed_rect),
        )
        handler = self._routed_handlers.get(body.kind)
        if handler is not None:
            handler(body.body)

    def _learn_shortcut(
        self, info: m.NeighborInfo, allow_adjacent: bool = False
    ) -> None:
        """Cache a remote region's claim gleaned from passing traffic.

        Entries for ourselves, our own region, or regions already in the
        neighbor table are useless (neighbors are consulted directly);
        claims adjacent to our region belong in the neighbor table's
        repair machinery, not here.  ``allow_adjacent`` lifts that last
        rule for caretaken holes: a hole has no owner to heartbeat it
        into the neighbor table, so the caretaker's claim is cached even
        when the hole abuts our region (routing toward the hole must
        still find the live node serving it).
        """
        if not self.shortcuts.enabled or self.owned is None:
            return
        if info.primary == self.address or info.secondary == self.address:
            return
        if info.primary in self.suspected:
            return
        own = self.owned.rect
        if info.rect == own or info.rect.intersects(own):
            return
        if info.rect.is_neighbor_of(own) and not allow_adjacent:
            # Adjacent regions are neighbor-table business; drop any
            # cached copy so the two tables never disagree.
            self.shortcuts.invalidate_rect(info.rect)
            return
        if info.rect in self.neighbor_table:
            return
        if self.shortcuts.learn(info):
            obs.inc("routing.shortcut.learned")

    # ------------------------------------------------------------------
    # Join handling
    # ------------------------------------------------------------------
    def _on_join_request(self, message: Message) -> None:
        body: m.JoinRequestBody = message.body
        self._handle_join_request(body)

    def _forward_to_my_primary(self, kind: str, body: Any) -> bool:
        """Secondaries relay requests to the primary serving their region.

        Returns True when the message was relayed (the caller must stop).
        A mobile user's entry point can be any node, including one that
        currently only backs a region.
        """
        if self.owned is not None and self.owned.role == "secondary":
            if self.owned.peer is not None:
                self._send_hop(self.owned.peer, kind, body, inner_kind=kind)
            return True
        return False

    def _send_hop(
        self, destination: NodeAddress, kind: str, body: Any, inner_kind: str
    ) -> None:
        """One forwarding hop; reliable when the payload must not drop.

        ``inner_kind`` is the routed request actually being moved --
        ``kind`` itself for a plain hop, the wrapped kind for a
        SHORTCUT_HOP envelope or a MISROUTE bounce.
        """
        if inner_kind in RELIABLE_ROUTED_KINDS:
            self._send_critical(destination, kind, body)
        else:
            self.network.send(self.address, destination, kind, body)

    def _handle_join_request(self, body: m.JoinRequestBody) -> None:
        if self.owned is None:
            return
        if self._forward_to_my_primary(m.JOIN_REQUEST, body):
            return
        if self._owns_point(body.coord):
            self._admit_joiner(body)
            return
        hole = self._caretaker_for(body.coord)
        if hole is not None:
            self._grant_hole(body, hole)
            return
        if not self._route_forward(m.JOIN_REQUEST, body, body.coord):
            # Nobody is strictly closer: the coordinate sits on a border we
            # do not own; admit here rather than dropping the join.
            self._admit_joiner(body)

    def _admit_joiner(self, body: m.JoinRequestBody) -> None:
        assert self.owned is not None
        if self.config.dual_peer and self.owned.peer is None:
            self._grant_secondary(body)
        else:
            self._grant_split(body)

    def _grant_secondary(self, body: m.JoinRequestBody) -> None:
        """Fill this region's empty secondary slot with the joiner."""
        assert self.owned is not None
        causal.annotate(
            "grant_secondary",
            granter=str(self.address),
            joiner=str(body.joiner),
            rect=str(self.owned.rect),
        )
        self.owned.peer = body.joiner
        # Start the liveness clock now: the joiner cannot heartbeat before
        # the grant completes its round trip.
        self.last_seen[body.joiner] = self.scheduler.now
        grant = m.JoinGrantBody(
            role="secondary",
            rect=self.owned.rect,
            peer=self.address,
            neighbors=tuple(self.neighbor_table.values()),
            items=tuple(self.owned.items),
            nonce=body.nonce,
            objects=tuple(self.owned.store.records()),
            subscriptions=tuple(self.owned.subs.records()),
        )
        # A lost replica grant costs no data (we keep the records), but
        # the region would sit half-full until the peer timeout; the
        # reliable channel retransmits until the joiner confirms.
        self._send_grant(body.joiner, grant)
        self._announce_self()

    def _grant_split(self, body: m.JoinRequestBody) -> None:
        """Split the owned region and hand the joiner one half."""
        assert self.owned is not None
        old_rect = self.owned.rect
        axis = old_rect.longer_axis()
        low, high = old_rect.split(axis)
        if self._covers(low, self.node.coord) and not self._covers(
            low, body.coord
        ):
            kept, handed = low, high
        elif self._covers(high, self.node.coord) and not self._covers(
            high, body.coord
        ):
            kept, handed = high, low
        elif self._covers(low, body.coord):
            kept, handed = high, low
        else:
            kept, handed = low, high
        causal.annotate(
            "grant_split",
            granter=str(self.address),
            joiner=str(body.joiner),
            kept=str(kept),
            rect=str(handed),
        )
        self.owned.rect = kept
        kept_items = [
            (point, item) for point, item in self.owned.items
            if self._covers(kept, point)
        ]
        handed_items = tuple(
            (point, item) for point, item in self.owned.items
            if not self._covers(kept, point)
        )
        self.owned.items = kept_items
        handed_objects = tuple(self.owned.store.split_off(kept))
        if handed_objects:
            obs.inc("store.node.migrated", len(handed_objects))
            causal.annotate(
                "store_handover",
                event="split",
                source=str(self.address),
                target=str(body.joiner),
                objects=len(handed_objects),
            )
        # Subscriptions touching the handed half ride the grant (a copy:
        # registrations spanning the split line stay registered here
        # too); anything no longer touching the kept half is dropped.
        handed_subs = tuple(self.owned.subs.touching(handed))
        self.owned.subs.retain_touching(kept)
        if handed_subs:
            obs.inc("sub.node.migrated", len(handed_subs))

        joiner_neighbors = [
            info for info in self.neighbor_table.values()
            if handed.is_neighbor_of(info.rect)
        ]
        joiner_neighbors.append(self._my_info())
        grant = m.JoinGrantBody(
            role="primary",
            rect=handed,
            peer=None,
            neighbors=tuple(joiner_neighbors),
            items=handed_items,
            nonce=body.nonce,
            objects=handed_objects,
            subscriptions=handed_subs,
        )
        # The grant carries the handed half's records and the network is
        # lossy: the reliable channel retransmits until the joiner
        # confirms receipt, else the records die with the one dropped
        # message.
        self._send_grant(body.joiner, grant)

        joiner_info = m.NeighborInfo(rect=handed, primary=body.joiner)
        stale = [
            rect for rect, info in self.neighbor_table.items()
            if not kept.is_neighbor_of(rect)
        ]
        recipients = {
            info.primary for info in self.neighbor_table.values()
        }
        now = self.scheduler.now
        horizon = (
            self.config.heartbeat_interval
            * self.config.failure_timeout_multiplier
        )
        self._split_announced = {
            rect: (audience, at)
            for rect, (audience, at) in self._split_announced.items()
            if now - at <= horizon
        }
        self._split_announced[handed] = (set(recipients), now)
        for rect in stale:
            del self.neighbor_table[rect]
        self.neighbor_table[handed] = joiner_info
        for recipient in sorted(recipients, key=_address_order):
            self.network.send(
                self.address, recipient, m.NEIGHBOR_UPDATE,
                m.NeighborUpdateBody(info=self._my_info(), removed_rect=old_rect),
            )
            self.network.send(
                self.address, recipient, m.NEIGHBOR_UPDATE,
                m.NeighborUpdateBody(info=joiner_info),
            )
        self._send_sync()

    def _send_grant(
        self, joiner: NodeAddress, grant: m.JoinGrantBody
    ) -> None:
        """Ship a join grant over the reliable channel.

        Retransmitting is safe: a joiner that did install the region (its
        ack was the lost message) deduplicates the envelope and only acks
        again.  ``grant_resend_attempts <= 0`` reverts to a raw one-shot
        send -- the fault-injection knob the forensic replays use to
        re-open the historical lost-grant failure modes.  Once the
        attempts run out the usual hole/caretaker machinery deals with
        the (actually dead) joiner.
        """
        if self.config.grant_resend_attempts <= 0:
            self.network.send(self.address, joiner, m.JOIN_GRANT, grant)
            return
        self._send_critical(joiner, m.JOIN_GRANT, grant)

    def _grant_hole(self, body: m.JoinRequestBody, hole: Rect) -> None:
        """Fill an orphaned region (all owners dead) with the joiner."""
        causal.annotate(
            "grant_hole",
            granter=str(self.address),
            joiner=str(body.joiner),
            rect=str(hole),
        )
        neighbors = [
            info for info in self.neighbor_table.values()
            if hole.is_neighbor_of(info.rect)
        ]
        if self.owned is not None and hole.is_neighbor_of(self.owned.rect):
            neighbors.append(self._my_info())
        grant = m.JoinGrantBody(
            role="primary", rect=hole, peer=None,
            neighbors=tuple(neighbors), items=(), nonce=body.nonce,
        )
        self.network.send(self.address, body.joiner, m.JOIN_GRANT, grant)
        self.caretaker_rects.discard(hole)
        joiner_info = m.NeighborInfo(rect=hole, primary=body.joiner)
        # Ownership of the hole just changed hands: any cached claim
        # overlapping it is stale, and the fresh owner is worth caching.
        self.shortcuts.invalidate_overlapping(hole)
        if self.owned is not None and hole.is_neighbor_of(self.owned.rect):
            self.neighbor_table[hole] = joiner_info
        else:
            self._learn_shortcut(joiner_info)
        self._broadcast_update(m.NeighborUpdateBody(info=joiner_info))

    def _on_join_grant(self, message: Message) -> None:
        body: m.JoinGrantBody = message.body
        # Receipt confirmation is the reliable channel's business now: a
        # grant shipped through it was already acked (and deduplicated)
        # before this handler ran, whatever we decide below.
        if self.joined:
            if (
                self.owned is not None
                and body.rect == self.owned.rect
                and body.role == self.owned.role
            ):
                # A granter that had not heard from us yet resent the
                # grant we already accepted: make ourselves heard rather
                # than declining the region back to it.
                if self.owned.role == "primary":
                    self._announce_self()
                return
            # We already hold a region (a slower grant from a retried
            # attempt arrived): hand this one straight back so no region
            # is orphaned.  Accepting whichever grant arrives first --
            # regardless of attempt -- avoids declining a perfectly good
            # region that merely lost a race with the retry timer.
            decline = m.GrantDeclineBody(
                role=body.role, rect=body.rect, items=body.items,
                objects=body.objects, subscriptions=body.subscriptions,
            )
            causal.annotate(
                "grant_declined",
                joiner=str(self.address),
                granter=str(message.source),
                rect=str(body.rect),
            )
            self.network.send(
                self.address, message.source, m.GRANT_DECLINE, decline
            )
            return
        causal.annotate(
            "grant_accepted",
            joiner=str(self.address),
            granter=str(message.source),
            role=body.role,
            rect=str(body.rect),
        )
        self.owned = OwnedRegion(
            rect=body.rect,
            role=body.role,
            peer=body.peer,
            items=list(body.items),
            store=GridIndex(records=body.objects),
            subs=SubIndex(records=body.subscriptions),
        )
        self.neighbor_table = {
            info.rect: info
            for info in body.neighbors
            if body.rect.is_neighbor_of(info.rect)
        }
        self.host_cache.remember_all(
            info.primary for info in body.neighbors
        )
        if body.role == "secondary":
            # Until the first periodic sync arrives, the grant's neighbor
            # list is the replicated table a failover would activate.
            self._replicated_neighbors = body.neighbors
        self.joined = True
        self._start_timers()
        self._announce_self()

    # ------------------------------------------------------------------
    # Neighbor-table maintenance
    # ------------------------------------------------------------------
    def _my_info(self) -> m.NeighborInfo:
        assert self.owned is not None
        if self.owned.role == "primary":
            return m.NeighborInfo(
                rect=self.owned.rect,
                primary=self.address,
                secondary=self.owned.peer,
            )
        assert self.owned.peer is not None
        return m.NeighborInfo(
            rect=self.owned.rect,
            primary=self.owned.peer,
            secondary=self.address,
        )

    def _announce_self(self) -> None:
        self._broadcast_update(m.NeighborUpdateBody(info=self._my_info()))

    def _broadcast_update(self, update: m.NeighborUpdateBody) -> None:
        recipients: Set[NodeAddress] = set()
        for info in self.neighbor_table.values():
            recipients.add(info.primary)
            if info.secondary is not None:
                recipients.add(info.secondary)
        recipients.discard(self.address)
        for recipient in sorted(recipients, key=_address_order):
            self.network.send(
                self.address, recipient, m.NEIGHBOR_UPDATE, update
            )

    def _resolve_ownership_conflict(
        self, info: m.NeighborInfo, direct: bool
    ) -> bool:
        """Handle a claim overlapping the region we serve as primary.

        Unreliable failure detection can double-assign territory (a
        caretaker fills a "hole" whose owner was merely silent, or a lost
        grant-decline leaves two believers).  Resolution is deterministic:
        the owner with the lexicographically smaller ``(ip, port)`` keeps
        the ground, the other abandons and rejoins from scratch.

        A node only abandons on *direct* evidence -- a heartbeat from the
        competing claimant itself -- never on relayed gossip (which may be
        arbitrarily stale).  An indirect sighting instead provokes a probe
        heartbeat to the claimant, so the two confront each other directly
        and exactly one side yields.  Returns True when this node
        abandoned (the caller must stop processing the message).
        """
        if (
            self.owned is None
            or self.owned.role != "primary"
            or info.primary == self.address
        ):
            return False
        overlaps = info.rect == self.owned.rect or info.rect.intersects(
            self.owned.rect
        )
        if not overlaps:
            return False
        if direct and self._switch_handoff is not None:
            counterpart, handed_rect, deadline = self._switch_handoff
            if self.scheduler.now >= deadline:
                self._switch_handoff = None
            elif (
                info.primary == counterpart
                and handed_rect == self.owned.rect
            ):
                # A primary switch hands this rect over in flight: until
                # the counterpart installs our old region, its heartbeats
                # still claim the one it shipped us.  That first-hand
                # evidence is known-stale -- confront instead of yielding,
                # so a counterpart that really still claims the ground
                # (lost accept) keeps getting probed and the conflict
                # resolves once the grace period lapses.
                causal.annotate(
                    "switch_claim_demoted",
                    owner=str(self.address),
                    counterpart=str(info.primary),
                    rect=str(self.owned.rect),
                )
                direct = False
        mine = (self.address.ip, self.address.port)
        theirs = (info.primary.ip, info.primary.port)
        if not direct or mine <= theirs:
            # Either we keep the ground, or the evidence is second-hand:
            # confront the claimant directly so the loser (possibly us, on
            # its direct reply) can yield on first-hand evidence.
            self.network.send(
                self.address,
                info.primary,
                m.HEARTBEAT,
                m.HeartbeatBody(
                    rect=self.owned.rect,
                    role="primary",
                    secondary=self.owned.peer,
                    index=self.workload_index,
                    capacity=self.node.capacity,
                ),
            )
            return False
        # Hand over cleanly before yielding.  Complementary caretaker
        # grants can give the two claimants disjoint views of the same
        # region, so the winner may lack exactly the neighbor links we
        # hold: ship them over, and point our own neighbors at the winner
        # so they re-route there instead of timing us out and declaring
        # the region a hole all over again.
        causal.annotate(
            "ownership_yield",
            loser=str(self.address),
            winner=str(info.primary),
            rect=str(self.owned.rect),
            claimed=str(info.rect),
        )
        if len(self.owned.store):
            # Ship our store to the winner before abandoning: a non-
            # authoritative repair merges LWW on its side, so whichever
            # copies are fresher survive the conflict.
            records = tuple(self.owned.store.records())
            causal.annotate(
                "store_handover",
                event="ownership_yield",
                source=str(self.address),
                target=str(info.primary),
                objects=len(records),
            )
            obs.inc("store.node.migrated", len(records))
            buckets = tuple(
                (key, tuple(self.owned.store.bucket_records(key)))
                for key in sorted(self.owned.store.digest())
            )
            self.network.send(
                self.address, info.primary, m.STORE_REPAIR,
                m.StoreRepairBody(
                    rect=self.owned.rect,
                    buckets=buckets,
                    authoritative=False,
                ),
            )
        if len(self.owned.subs):
            # Likewise ship our registrations: the winner merges them LWW
            # through the anti-entropy receive path, so live leases
            # survive the conflict on the surviving owner.
            self.network.send(
                self.address, info.primary, m.SUB_SYNC,
                m.SubSyncBody(
                    rect=self.owned.rect,
                    records=tuple(self.owned.subs.records()),
                ),
            )
        for neighbor in self.neighbor_table.values():
            if neighbor.primary == info.primary:
                continue
            self.network.send(
                self.address, info.primary, m.NEIGHBOR_UPDATE,
                m.NeighborUpdateBody(info=neighbor),
            )
        self._broadcast_update(m.NeighborUpdateBody(info=info))
        self.owned = None
        self.joined = False
        self.neighbor_table = {}
        self.caretaker_rects = set()
        self._claims_heard = {}
        self._claims_confronted = {}
        self._switch_handoff = None
        self._replicated_neighbors = ()
        self.shortcuts.clear()
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        self.start_join()
        return True

    def _witness_claim(self, info: m.NeighborInfo) -> None:
        """Arbitrate third-party ownership claims heard in heartbeats.

        The neighbor-table witness in ``_on_heartbeat`` only fires when
        one table holds both conflicting claims.  After a double
        hole-grant the two claimants can have *disjoint* neighbor sets
        (each caretaker handed its joiner a different side of the region),
        so the claims only ever co-occur in the gossip streams crossing
        some bystander.  That bystander remembers recent claims here and,
        when two live claims for the *same* rect name different primaries,
        sends each party the other's claim; the ensuing direct
        confrontation makes the deterministic loser yield on first-hand
        evidence.  Only exact-rect conflicts are arbitrated -- a double
        grant hands out the identical region, while merely-overlapping
        claims arise transiently around every split -- and a per-pair
        cooldown bounds the witness to one notification per heartbeat
        interval.
        """
        if not self.config.claim_witness_enabled:
            return
        if info.primary == self.address:
            return
        now = self.scheduler.now
        horizon = (
            self.config.heartbeat_interval
            * self.config.failure_timeout_multiplier
        )
        stale = [
            rect for rect, (_, heard_at) in self._claims_heard.items()
            if now - heard_at > horizon
        ]
        for rect in stale:
            del self._claims_heard[rect]
        cached = self._claims_heard.get(info.rect)
        if (
            cached is not None
            and now - cached[1] <= horizon
            and cached[0].primary != info.primary
            and cached[0].primary != self.address
            and cached[0].primary not in self.suspected
            and info.primary not in self.suspected
        ):
            other = cached[0]
            first, second = sorted(
                (other.primary, info.primary),
                key=lambda address: (address.ip, address.port),
            )
            pair = (info.rect, first, second)
            last = self._claims_confronted.get(pair)
            if last is None or now - last >= self.config.heartbeat_interval:
                self._claims_confronted = {
                    key: at
                    for key, at in self._claims_confronted.items()
                    if now - at <= horizon
                }
                self._claims_confronted[pair] = now
                causal.annotate(
                    "claim_confront",
                    witness=str(self.address),
                    rect=str(info.rect),
                    claimants=f"{first}/{second}",
                )
                self.network.send(
                    self.address, other.primary, m.NEIGHBOR_UPDATE,
                    m.NeighborUpdateBody(info=info),
                )
                self.network.send(
                    self.address, info.primary, m.NEIGHBOR_UPDATE,
                    m.NeighborUpdateBody(info=other),
                )
        self._claims_heard[info.rect] = (info, now)

    def _on_neighbor_update(self, message: Message) -> None:
        body: m.NeighborUpdateBody = message.body
        if body.removed_rect is not None:
            self.neighbor_table.pop(body.removed_rect, None)
            # The retracted region was split, merged away, or orphaned:
            # any cached claim overlapping it is stale.
            self.shortcuts.invalidate_overlapping(body.removed_rect)
        if self.owned is None:
            return
        info = body.info
        self.caretaker_rects.discard(info.rect)
        if self._resolve_ownership_conflict(info, direct=False):
            return
        if info.rect == self.owned.rect:
            return
        # An announced partition change invalidates overlapping cached
        # claims whether or not the new region is adjacent to us.
        self.shortcuts.invalidate_overlapping(info.rect)
        if self.owned.rect.is_neighbor_of(info.rect):
            self.neighbor_table[info.rect] = info
            self.host_cache.remember(info.primary)
        else:
            self.neighbor_table.pop(info.rect, None)
            self._learn_shortcut(info)

    # ------------------------------------------------------------------
    # Heartbeats, sync, failure detection
    # ------------------------------------------------------------------
    def _send_neighbor_heartbeats(self) -> None:
        if not self.alive or self.owned is None or self.owned.role != "primary":
            return
        pressure = 0.0
        if self._overload:
            # Backpressure piggybacks on the heartbeat next to the
            # workload stats: current queue depth over the admission
            # budget, clamped to [0, 1].
            pressure = min(
                1.0,
                self.network.in_flight_to(self.address)
                / self._overload_budget,
            )
        vitals = None
        if self._telemetry:
            # One roll per heartbeat tick: the digest version advances
            # monotonically and every neighbor receives the same frame.
            now = self.scheduler.now
            vitals = self.vitals.roll(
                now=now,
                store_size=len(self.owned.store),
                anti_entropy_debt=self._anti_entropy_debt,
                queue_depth=self.network.in_flight_to(self.address),
                suspects=self.health.suspects(now),
                sub_registered=len(self.owned.subs),
                pressure=pressure,
                sheds=self.sheds,
            )
        neighbors = tuple(self.neighbor_table.values())
        caretaken = tuple(self.caretaker_rects)
        beat = m.HeartbeatBody(
            rect=self.owned.rect, role="primary", secondary=self.owned.peer,
            neighbors=neighbors,
            index=self.workload_index, capacity=self.node.capacity,
            caretaken=caretaken,
            vitals=vitals,
            pressure=pressure,
        )
        streaks: Dict[NodeAddress, int] = {}
        if vitals is not None:
            # Attest per-destination send streaks: a destination dropped
            # from the neighbor set restarts at 1, telling its health
            # view that the silence was churn, not loss.
            for info in neighbors:
                dest = info.primary
                streaks[dest] = self._hb_streak.get(dest, 0) + 1
            self._hb_streak = streaks
        # Destinations that entered the neighbor set together carry the
        # same streak, so one stamped clone usually serves most of them.
        clones: Dict[int, m.HeartbeatBody] = {}
        for info in neighbors:
            body = beat
            if vitals is not None:
                streak = streaks[info.primary]
                body = clones.get(streak)
                if body is None:
                    body = m.heartbeat_with_streak(beat, streak)
                    clones[streak] = body
            self.network.send(self.address, info.primary, m.HEARTBEAT, body)
        self._probe_perimeter_gap()

    # ------------------------------------------------------------------
    # Perimeter self-repair
    # ------------------------------------------------------------------
    def _find_perimeter_gap(self) -> Optional[Tuple[str, float, float, Point]]:
        """The first uncovered stretch of this region's perimeter.

        Walks the four edges of the owned rect, subtracting the
        projections of every claim this node knows about (neighbor
        table, caretaken holes, cached shortcuts) and the world boundary.
        Returns ``(edge, lo, hi, probe_point)`` for the first remaining
        stretch, where ``probe_point`` lies just outside the gap's
        midpoint, or ``None`` when the perimeter is fully accounted for.
        """
        assert self.owned is not None and self.bounds is not None
        rect = self.owned.rect
        known = [info.rect for info in self.neighbor_table.values()]
        known.extend(self.caretaker_rects)
        known.extend(info.rect for info in self.shortcuts.entries())
        bounds = self.bounds
        tol = 1e-9
        offset = 1e-3
        # (name, fixed coordinate, span lo, span hi, on world edge,
        #  outward probe x/y for a vertical/horizontal edge)
        edges = (
            ("left", rect.x, rect.y, rect.y2,
             rect.x - bounds.x <= tol, rect.x - offset, True),
            ("right", rect.x2, rect.y, rect.y2,
             bounds.x2 - rect.x2 <= tol, rect.x2 + offset, True),
            ("bottom", rect.y, rect.x, rect.x2,
             rect.y - bounds.y <= tol, rect.y - offset, False),
            ("top", rect.y2, rect.x, rect.x2,
             bounds.y2 - rect.y2 <= tol, rect.y2 + offset, False),
        )
        for name, fixed, lo, hi, on_world_edge, outside, vertical in edges:
            if on_world_edge:
                continue
            intervals = []
            for other in known:
                # A claim covers part of this edge when it contains the
                # just-outside probe line (``outside`` is the edge pushed
                # one offset outward, so rects flush with the edge on the
                # outer side count and rects flush on the inner side do
                # not, for either edge orientation).
                if vertical:
                    touches = other.x <= outside <= other.x2
                    span = (other.y, other.y2)
                else:
                    touches = other.y <= outside <= other.y2
                    span = (other.x, other.x2)
                if touches and span[1] > lo and span[0] < hi:
                    intervals.append((max(lo, span[0]), min(hi, span[1])))
            intervals.sort()
            cursor = lo
            for start, end in intervals:
                if start > cursor + tol:
                    break
                cursor = max(cursor, end)
            if cursor < hi - tol:
                gap_hi = hi
                for start, end in intervals:
                    if start > cursor + tol:
                        gap_hi = start
                        break
                mid = (cursor + gap_hi) / 2.0
                point = (
                    Point(outside, mid) if vertical else Point(mid, outside)
                )
                return (name, cursor, gap_hi, point)
        return None

    def _probe_perimeter_gap(self) -> None:
        """Probe an uncovered perimeter stretch that survived damping."""
        if (
            not self.config.perimeter_probe_enabled
            or self.bounds is None
            or self.owned is None
            or self.owned.role != "primary"
        ):
            return
        gap = self._find_perimeter_gap()
        if gap is None:
            self._perimeter_gap = None
            self._perimeter_gap_ticks = 0
            return
        name, lo, hi, point = gap
        signature = (name, round(lo, 6), round(hi, 6))
        if signature != self._perimeter_gap:
            self._perimeter_gap = signature
            self._perimeter_gap_ticks = 1
            return
        self._perimeter_gap_ticks += 1
        if self._perimeter_gap_ticks < 2:
            return
        # Re-arm the damping counter so an unhealed gap is re-probed
        # every other tick, not every tick.
        self._perimeter_gap_ticks = 0
        obs.inc("protocol.perimeter.probe_sent")
        causal.annotate(
            "perimeter_probe",
            prober=str(self.address),
            rect=str(self.owned.rect),
            edge=name,
            point=str(point),
        )
        self._forward_probe(
            m.PerimeterProbeBody(
                info=self._my_info(),
                point=point,
                ttl=self.config.perimeter_probe_ttl,
                visited=(self.address,),
            )
        )

    def _forward_probe(self, body: m.PerimeterProbeBody) -> None:
        """Greedily forward a perimeter probe toward its target point.

        Unlike the routed-request path there is no strict-progress rule:
        a prober's table is sparse by construction (that is why it is
        probing), so the probe may have to move *away* before it can
        close in.  The ``visited`` list breaks the loops this allows and
        the ttl bounds undeliverable probes.
        """
        if body.ttl <= 0:
            obs.inc("protocol.perimeter.probe_expired")
            return
        best_address: Optional[NodeAddress] = None
        best_distance = math.inf
        candidates = list(self.neighbor_table.values())
        candidates.extend(self.shortcuts.entries())
        for info in candidates:
            endpoint = self._live_endpoint(info)
            if (
                endpoint is None
                or endpoint == self.address
                or endpoint in body.visited
            ):
                continue
            distance = info.rect.distance_to_point(body.point)
            if distance < best_distance - 1e-12:
                best_distance = distance
                best_address = endpoint
        if best_address is None:
            obs.inc("protocol.perimeter.probe_dead_end")
            return
        self.network.send(
            self.address, best_address, m.PERIMETER_PROBE, body
        )

    def _on_perimeter_probe(self, message: Message) -> None:
        """Serve (install + answer) or forward a perimeter probe."""
        body: m.PerimeterProbeBody = message.body
        if not self.alive or self.owned is None:
            return
        info = body.info
        if info.primary == self.address:
            return
        # A probe whose claim overlaps our own territory is a conflict,
        # not a neighbor to install; the usual confrontation machinery
        # (gossip-grade evidence) sorts out who yields.
        if self._resolve_ownership_conflict(info, direct=False):
            return
        serves = self.owned.role == "primary" and (
            self._owns_point(body.point)
            or self._caretaker_for(body.point) is not None
        )
        if not serves:
            self._forward_probe(body.forwarded(self.address))
            return
        obs.inc("protocol.perimeter.probe_served")
        causal.annotate(
            "perimeter_heal",
            server=str(self.address),
            prober=str(info.primary),
            rect=str(info.rect),
        )
        self.caretaker_rects.discard(info.rect)
        if self.owned.rect.is_neighbor_of(info.rect):
            self.shortcuts.invalidate_overlapping(info.rect)
            self.neighbor_table[info.rect] = info
            self.host_cache.remember(info.primary)
        else:
            self._learn_shortcut(info)
        # Answer with a direct heartbeat: first-hand evidence the prober
        # installs through the normal path, healing its side of the gap.
        self.network.send(
            self.address, info.primary, m.HEARTBEAT,
            m.HeartbeatBody(
                rect=self.owned.rect, role="primary",
                secondary=self.owned.peer,
                neighbors=tuple(self.neighbor_table.values()),
                index=self.workload_index, capacity=self.node.capacity,
                caretaken=tuple(self.caretaker_rects),
            ),
        )

    def _send_peer_heartbeat(self) -> None:
        if not self.alive or self.owned is None or self.owned.peer is None:
            return
        beat = m.HeartbeatBody(rect=self.owned.rect, role=self.owned.role)
        self.network.send(self.address, self.owned.peer, m.HEARTBEAT, beat)

    def _on_heartbeat(self, message: Message) -> None:
        body: m.HeartbeatBody = message.body
        if body.role != "primary":
            # A peer heartbeat from someone who believes it is our
            # secondary; if we disagree (we evicted it, or replaced it),
            # tell it so it can rejoin instead of promoting stale state.
            # Only authoritative for the region we serve *right now*: a
            # primary that just switched regions still receives a few
            # beats addressed to the old region's primary, and releasing
            # that secondary would strip the old region (whose new
            # primary inherited it as peer) of its replica.
            if (
                self.owned is not None
                and self.owned.role == "primary"
                and body.rect == self.owned.rect
                and self.owned.peer != message.source
            ):
                self.network.send(
                    self.address,
                    message.source,
                    m.SECONDARY_RELEASED,
                    m.SecondaryReleasedBody(rect=body.rect),
                )
            return
        # Fold the piggybacked vitals digest (when the sender runs the
        # telemetry plane) before any early return below: health evidence
        # is observational and must not depend on how the ownership
        # claims shake out.
        if self._telemetry and body.vitals is not None:
            self.health.observe(
                message.source,
                body.vitals,
                self.scheduler.now,
                streak=body.vitals_streak or None,
            )
        # A heartbeat is authoritative: the sender serves that region right
        # now.  Refresh the entry -- and *re-install* it if the region is
        # adjacent to ours, which self-heals tables after lost updates and
        # wrongly declared holes (e.g. a failover announcement that raced
        # our failure detector).
        self.caretaker_rects.discard(body.rect)
        # A peer heartbeat for our own region from an address we did not
        # expect means the primary switched under us (mechanism (b) moved
        # ownership); adopt the new primary.
        if (
            self.owned is not None
            and self.owned.role == "secondary"
            and body.rect == self.owned.rect
            and self.owned.peer != message.source
        ):
            self.owned.peer = message.source
        # A primary heartbeat is first-hand: its rect is the sender's own
        # territory right now, so an overlap with ours is a real conflict.
        if self._resolve_ownership_conflict(
            m.NeighborInfo(
                rect=body.rect, primary=message.source,
                secondary=body.secondary,
            ),
            direct=True,
        ):
            return
        if self.owned is not None and body.rect != self.owned.rect:
            self.neighbor_stats[body.rect] = (body.index, body.capacity)
            self._neighbor_stats_at[body.rect] = self.scheduler.now
            if self._overload:
                self.neighbor_pressure[body.rect] = body.pressure
        self._witness_claim(
            m.NeighborInfo(
                rect=body.rect, primary=message.source,
                secondary=body.secondary,
            )
        )
        existing = self.neighbor_table.get(body.rect)
        if (
            self.config.claim_witness_enabled
            and existing is not None
            and existing.primary != message.source
            and existing.primary != self.address
            and existing.primary not in self.suspected
        ):
            # Two live nodes are heartbeating us as primary of the same
            # region -- we are a witness to a split brain they cannot see
            # (equal rects are not neighbors, so they never talk).  Tell
            # the deterministic loser about the winner; it will confront
            # the winner directly and yield.
            winner, loser = sorted(
                (existing.primary, message.source),
                key=lambda address: (address.ip, address.port),
            )
            causal.annotate(
                "claim_confront",
                witness=str(self.address),
                rect=str(body.rect),
                claimants=f"{winner}/{loser}",
            )
            self.network.send(
                self.address, loser, m.NEIGHBOR_UPDATE,
                m.NeighborUpdateBody(
                    info=m.NeighborInfo(
                        rect=body.rect, primary=winner,
                        secondary=body.secondary,
                    )
                ),
            )
        adjacent = (
            self.owned is not None
            and self.owned.rect.is_neighbor_of(body.rect)
        )
        sender_info = m.NeighborInfo(
            rect=body.rect, primary=message.source,
            secondary=body.secondary,
        )
        if existing is not None or adjacent:
            # A fresh first-hand claim supersedes any cached claim
            # overlapping the same ground.
            self.shortcuts.invalidate_overlapping(body.rect)
            self.neighbor_table[body.rect] = sender_info
        else:
            # A first-hand claim from a non-neighbor (e.g. a probe or
            # confrontation heartbeat): worth a shortcut entry.
            self._learn_shortcut(sender_info)
        # Gossip: adopt adjacent entries we are missing; cache the rest.
        if self.owned is None:
            return
        for info in body.neighbors:
            if info.primary == self.address:
                continue
            # Relayed claims overlapping our territory provoke a direct
            # confrontation (never an abandonment -- gossip can be stale,
            # and a probe to a genuinely dead claimant costs one message).
            self._resolve_ownership_conflict(info, direct=False)
            self._witness_claim(info)
            if info.primary in self.suspected:
                continue
            if info.rect in self.neighbor_table:
                continue
            if info.rect == self.owned.rect:
                continue
            if self.owned.rect.is_neighbor_of(info.rect):
                self.caretaker_rects.discard(info.rect)
                self.shortcuts.invalidate_rect(info.rect)
                self.neighbor_table[info.rect] = info
            else:
                # Gossiped claims for far regions are exactly the passive
                # traffic the shortcut cache learns from.
                self._learn_shortcut(info)
        # Caretaken holes have no owner to heartbeat them into our table;
        # cache the caretaker's claim (even for an abutting hole) so
        # routing toward the hole -- e.g. the store's re-home sweep --
        # reaches the live node serving it instead of dead-ending.
        for hole in body.caretaken:
            if hole in self.neighbor_table:
                continue
            self._learn_shortcut(
                m.NeighborInfo(rect=hole, primary=message.source),
                allow_adjacent=True,
            )

    def _send_sync(self) -> None:
        if not self.alive:
            return
        if self.owned is not None:
            self._rehome_misplaced()
        # Runs even without an owned region: a pure subscriber still
        # re-asserts its own leases on this timer.
        self._sub_maintenance()
        if (
            self.owned is None
            or self.owned.role != "primary"
            or self.owned.peer is None
        ):
            return
        body = m.SyncStateBody(
            rect=self.owned.rect,
            neighbors=tuple(self.neighbor_table.values()),
            items=tuple(self.owned.items),
        )
        self.network.send(self.address, self.owned.peer, m.SYNC_STATE, body)
        # The store does not ship its full content on every sync; the
        # primary sends a per-bucket digest instead and the secondary
        # pulls only divergent buckets (bounded anti-entropy).
        self._send_store_sync()

    def _on_sync_state(self, message: Message) -> None:
        body: m.SyncStateBody = message.body
        if self.owned is None or self.owned.role != "secondary":
            return
        if self.owned.peer != message.source:
            # The region's primary changed (switch or takeover); follow it.
            self.owned.peer = message.source
        self.owned.rect = body.rect
        self.owned.items = list(body.items)
        self._replicated_neighbors = body.neighbors

    def _check_failures(self) -> None:
        if not self.alive or self.owned is None:
            return
        now = self.scheduler.now
        cfg = self.config
        # 0. A primary evicts a silent secondary so the slot can be
        #    refilled by a later join (the paper: the region is marked
        #    "half full" again).
        if (
            self.owned.role == "primary"
            and self.owned.peer is not None
        ):
            timeout = (
                cfg.peer_heartbeat_interval * cfg.failure_timeout_multiplier
            )
            seen = self.last_seen.get(self.owned.peer)
            if seen is not None and now - seen > timeout:
                causal.annotate(
                    "peer_evicted",
                    primary=str(self.address),
                    peer=str(self.owned.peer),
                    rect=str(self.owned.rect),
                )
                self.suspected.add(self.owned.peer)
                self.shortcuts.invalidate_address(self.owned.peer)
                self.owned.peer = None
                self._announce_self()
        # 1. Dual-peer failover: the secondary watches its primary at the
        #    fast heartbeat frequency.
        if self.owned.role == "secondary" and self.owned.peer is not None:
            timeout = (
                cfg.peer_heartbeat_interval * cfg.failure_timeout_multiplier
            )
            seen = self.last_seen.get(self.owned.peer)
            if seen is not None and now - seen > timeout:
                self._take_over_primary()
                return
        # 2. Neighbor failure detection at the slow frequency.
        if self.owned.role != "primary":
            return
        timeout = cfg.heartbeat_interval * cfg.failure_timeout_multiplier
        for rect, info in list(self.neighbor_table.items()):
            seen = self.last_seen.get(info.primary)
            if seen is None:
                # Never heard from this peer: start its clock now so a
                # neighbor that never speaks still times out eventually.
                self.last_seen[info.primary] = now
                continue
            if now - seen <= timeout:
                continue
            self.suspected.add(info.primary)
            self.shortcuts.invalidate_address(info.primary)
            if info.secondary is not None:
                # The secondary will promote itself and announce; route via
                # the secondary in the meantime.
                continue
            # Last owner of the region is gone: become a caretaker until a
            # join fills the hole.
            causal.annotate(
                "caretake_adopt",
                caretaker=str(self.address),
                rect=str(rect),
                suspect=str(info.primary),
            )
            del self.neighbor_table[rect]
            self.caretaker_rects.add(rect)
        # 3. Expire stale neighbor workload statistics: an entry whose
        #    heartbeats stopped (crash, departure, region re-granted
        #    under a different rect) must not pin switch-candidate and
        #    deflection decisions with its last-reported load forever.
        #    Same timeout and clock-start discipline as the neighbor
        #    sweep above.
        for rect in list(self.neighbor_stats):
            heard = self._neighbor_stats_at.get(rect)
            if heard is None:
                # Entry predating the timestamp ledger (e.g. installed
                # by state transfer): start its clock now.
                self._neighbor_stats_at[rect] = now
                continue
            if now - heard <= timeout:
                continue
            del self.neighbor_stats[rect]
            self._neighbor_stats_at.pop(rect, None)
            self.neighbor_pressure.pop(rect, None)
            obs.inc("adapt.stats.expired")

    def _take_over_primary(self) -> None:
        """Dual-peer failover: activate the backup (Section 2.3)."""
        assert self.owned is not None
        failed = self.owned.peer
        causal.annotate(
            "failover",
            successor=str(self.address),
            failed=str(failed),
            rect=str(self.owned.rect),
            store_objects=len(self.owned.store),
        )
        if len(self.owned.store):
            obs.inc("store.node.migrated", len(self.owned.store))
            causal.annotate(
                "store_handover",
                event="failover",
                source=str(failed),
                target=str(self.address),
                objects=len(self.owned.store),
            )
        self.owned.role = "primary"
        self.owned.peer = None
        # Entries were learned in the secondary role; the rebuilt neighbor
        # table may now contain rects the cache also holds.  Start fresh.
        self.shortcuts.clear()
        if self._replicated_neighbors:
            self.neighbor_table = {
                info.rect: info
                for info in self._replicated_neighbors
                if self.owned.rect.is_neighbor_of(info.rect)
            }
        if failed is not None:
            self.suspected.add(failed)
            self.shortcuts.invalidate_address(failed)
            self.bootstrap.deregister(failed)
        self._announce_self()

    def _on_depart(self, message: Message) -> None:
        """The graceful counterpart of failover: instant promotion."""
        body: m.DepartBody = message.body
        if (
            self.owned is not None
            and self.owned.role == "secondary"
            and self.owned.rect == body.rect
        ):
            self.owned.items = list(body.items)
            # The departing primary's store is authoritative; merging LWW
            # also keeps anything fresher the replica saw in a race.
            self.owned.store.merge(body.objects)
            self.owned.subs.merge(body.subscriptions)
            self._replicated_neighbors = self._replicated_neighbors or ()
            self._take_over_primary()

    def _on_secondary_released(self, message: Message) -> None:
        """Our primary disowned us: drop the stale role and rejoin."""
        body: m.SecondaryReleasedBody = message.body
        if self.owned is None or self.owned.role != "secondary":
            return
        if self.owned.peer != message.source:
            return
        self.owned = None
        self.joined = False
        self.neighbor_table = {}
        self._claims_heard = {}
        self._replicated_neighbors = ()
        self.shortcuts.clear()
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        self.start_join()

    # ------------------------------------------------------------------
    # Distributed load adaptation: switch primary owners (mechanism b)
    # ------------------------------------------------------------------
    def _capture_state(self) -> m.RegionStateBody:
        assert self.owned is not None
        return m.RegionStateBody(
            rect=self.owned.rect,
            peer=self.owned.peer,
            items=tuple(self.owned.items),
            neighbors=tuple(self.neighbor_table.values()),
            objects=tuple(self.owned.store.records()),
            subscriptions=tuple(self.owned.subs.records()),
        )

    def _install_state(
        self,
        state: m.RegionStateBody,
        counterpart: NodeAddress,
        given_away: Optional[Rect] = None,
        given_away_peer: Optional[NodeAddress] = None,
    ) -> None:
        """Take over a region shipped by a completed primary switch.

        ``given_away`` is the rect this node just handed to
        ``counterpart``; when the two swapped regions are adjacent, the
        transferred table still carries a stale self-entry for it, which
        must be rebound to the counterpart.
        """
        self.owned = OwnedRegion(
            rect=state.rect,
            role="primary",
            peer=state.peer,
            items=list(state.items),
            store=GridIndex(records=state.objects),
            subs=SubIndex(records=state.subscriptions),
        )
        if state.objects:
            obs.inc("store.node.migrated", len(state.objects))
            causal.annotate(
                "store_handover",
                event="switch",
                source=str(counterpart),
                target=str(self.address),
                objects=len(state.objects),
            )
        self.neighbor_table = {
            info.rect: info
            for info in state.neighbors
            if state.rect.is_neighbor_of(info.rect)
            # After a chain of switches the shipped table can still name
            # *us* as primary of a region we owned earlier; routing via
            # such an entry would forward messages to ourselves forever.
            and info.primary != self.address
        }
        if given_away is not None and state.rect.is_neighbor_of(given_away):
            self.neighbor_table[given_away] = m.NeighborInfo(
                rect=given_away,
                primary=counterpart,
                secondary=given_away_peer,
            )
        self.neighbor_stats = {}
        self._neighbor_stats_at = {}
        self.neighbor_pressure = {}
        # The cache was learned from the old vantage point; entries may
        # now overlap or neighbor the new region.  Start fresh.
        self.shortcuts.clear()
        # Until the counterpart has installed our old region, its
        # heartbeats still claim the rect it shipped us; yielding to that
        # stale evidence would orphan the region we just took.  One
        # failure-timeout comfortably outlives the in-flight window.
        self._switch_handoff = (
            counterpart,
            state.rect,
            self.scheduler.now
            + self.config.heartbeat_interval
            * self.config.failure_timeout_multiplier,
        )
        self.switches_completed += 1
        causal.annotate(
            "switch_installed",
            owner=str(self.address),
            rect=str(state.rect),
            counterpart=str(counterpart),
        )
        self._announce_self()
        self._send_sync()
        self._send_neighbor_heartbeats()

    def _consider_switch(self) -> None:
        """The periodic adaptation check of an overloaded primary."""
        if (
            not self.alive
            or self.owned is None
            or self.owned.role != "primary"
            or self._switch_pending
        ):
            return
        my_index = self.workload_index
        stats = [
            (rect, index, capacity)
            for rect, (index, capacity) in self.neighbor_stats.items()
            if rect in self.neighbor_table
        ]
        if not stats:
            return
        lowest = min(index for _, index, _ in stats)
        if my_index <= self.config.adaptation_trigger_ratio * lowest:
            return
        candidates = [
            (rect, index, capacity)
            for rect, index, capacity in stats
            if capacity > self.node.capacity and index < my_index
        ]
        if not candidates:
            return
        rect, _, _ = max(
            candidates, key=lambda entry: (entry[2], -entry[1])
        )
        target = self.neighbor_table[rect].primary
        request = m.SwitchRequestBody(
            state=self._capture_state(),
            initiator_capacity=self.node.capacity,
            initiator_index=my_index,
        )
        self._switch_pending = True
        self._switch_proposed_rect = self.owned.rect
        self._switch_shipped_count = len(self.owned.items)
        #: Versions captured with the request; store records written after
        #: this snapshot must be replayed if the switch completes.
        self._switch_shipped_versions = {
            record.object_id: record.version
            for record in self.owned.store.records()
        }
        causal.annotate(
            "switch_proposed",
            initiator=str(self.address),
            target=str(target),
            rect=str(self.owned.rect),
        )
        self.network.send(self.address, target, m.SWITCH_REQUEST, request)
        # Clear the pending flag if no answer ever arrives (lost message,
        # crashed counterpart) so adaptation is not wedged forever.
        self.scheduler.after(
            self.config.adaptation_interval, self._clear_pending_switch
        )

    def _clear_pending_switch(self) -> None:
        self._switch_pending = False

    def _on_switch_request(self, message: Message) -> None:
        body: m.SwitchRequestBody = message.body
        rejection: Optional[str] = None
        if (
            self.owned is None
            or self.owned.role != "primary"
            or self._switch_pending
        ):
            rejection = "not an available primary"
        elif body.initiator_capacity >= self.node.capacity:
            rejection = "initiator is not weaker"
        elif body.initiator_index <= self.workload_index:
            rejection = "initiator is not hotter"
        if rejection is not None:
            self.network.send(
                self.address, message.source, m.SWITCH_REJECT,
                m.SwitchRejectBody(reason=rejection),
            )
            return
        my_state = self._capture_state()
        # The accept carries this node's entire region state; losing it
        # strands the swap half-done (we install the initiator's region
        # below, it keeps believing it owns it).  Ride the reliable
        # channel so the handoff survives drops.
        self._send_critical(
            message.source, m.SWITCH_ACCEPT, m.SwitchAcceptBody(state=my_state)
        )
        self._install_state(
            body.state,
            counterpart=message.source,
            given_away=my_state.rect,
            given_away_peer=my_state.peer,
        )

    def _on_switch_accept(self, message: Message) -> None:
        body: m.SwitchAcceptBody = message.body
        self._switch_pending = False
        if self.owned is None or self.owned.role != "primary":
            return
        proposed = self._switch_proposed_rect
        self._switch_proposed_rect = None
        if proposed is not None and self.owned.rect != proposed:
            # A delayed (possibly retried) accept for a proposal made from
            # a region we no longer own; installing its state now would
            # clobber ownership we acquired since.
            return
        # Items stored since the request's state capture were not shipped
        # with it; replay them through normal publication so they reach
        # the old region's new owner.
        shipped = getattr(self, "_switch_shipped_count", len(self.owned.items))
        leftovers = list(self.owned.items[shipped:])
        shipped_versions = getattr(self, "_switch_shipped_versions", None)
        store_leftovers = [
            record
            for record in self.owned.store.records()
            if shipped_versions is not None
            and record.version > shipped_versions.get(record.object_id, -1)
        ]
        old_rect = self.owned.rect
        old_peer = self.owned.peer
        self._install_state(
            body.state,
            counterpart=message.source,
            given_away=old_rect,
            given_away_peer=old_peer,
        )
        for point, item in leftovers:
            if not self._covers(self.owned.rect, point):
                self._handle_publish(
                    m.PublishBody(origin=self.address, point=point, item=item)
                )
        # Store records written after the state capture were not shipped
        # with it; replay them through normal update routing so they reach
        # the old region's new owner.
        for record in store_leftovers:
            if not self._covers(self.owned.rect, record.point):
                self._handle_store_update(
                    m.StoreUpdateBody(
                        origin=self.address,
                        record=record,
                        request_id=next(_request_ids),
                    )
                )

    def _on_switch_reject(self, message: Message) -> None:
        self._switch_pending = False

    def _on_grant_decline(self, message: Message) -> None:
        """Take back a region (or slot) a joiner refused."""
        body: m.GrantDeclineBody = message.body
        if self.owned is None:
            return
        if body.role == "secondary":
            if self.owned.peer == message.source:
                self.owned.peer = None
                self._announce_self()
            return
        # The split announcement went to the *pre-split* neighborhood, but
        # the table has since been pruned to the kept half's neighbors --
        # by now it can have forgotten neighbors of the handed half.  The
        # retraction must reach the original audience, or the survivors
        # keep a phantom entry for the declined region, time its
        # never-speaking "owner" out, and caretake (then re-grant) ground
        # that was never vacated.
        announced = self._split_announced.pop(body.rect, None)
        audience: Set[NodeAddress] = set() if announced is None else set(
            announced[0]
        )
        if self.owned.role == "primary" and self.owned.rect.can_merge_with(
            body.rect
        ):
            old_rect = self.owned.rect
            causal.annotate(
                "decline_merge",
                owner=str(self.address),
                rect=str(body.rect),
                merged=str(self.owned.rect.merge_with(body.rect)),
            )
            self.owned.rect = self.owned.rect.merge_with(body.rect)
            # Our territory grew: cached claims overlapping (or now
            # adjacent to) the merged rect are stale or misplaced.
            self.shortcuts.invalidate_overlapping(self.owned.rect)
            self.owned.items.extend(body.items)
            if body.objects:
                merged_back = self.owned.store.merge(body.objects)
                obs.inc("store.node.migrated", merged_back)
                causal.annotate(
                    "store_handover",
                    event="decline_merge",
                    source=str(message.source),
                    target=str(self.address),
                    objects=merged_back,
                )
            if body.subscriptions:
                self.owned.subs.merge(body.subscriptions)
            self.neighbor_table.pop(body.rect, None)
            self.neighbor_table = {
                rect: info
                for rect, info in self.neighbor_table.items()
                if self.owned.rect.is_neighbor_of(rect)
            }
            for info in self.neighbor_table.values():
                audience.add(info.primary)
                if info.secondary is not None:
                    audience.add(info.secondary)
            audience.discard(self.address)
            # A retraction that never arrives leaves the survivor a
            # phantom entry for the declined region (then a bogus hole to
            # caretake and re-grant): ride the reliable channel.
            for recipient in sorted(audience, key=_address_order):
                self._send_critical(
                    recipient, m.NEIGHBOR_UPDATE,
                    m.NeighborUpdateBody(
                        info=self._my_info(), removed_rect=old_rect
                    ),
                )
                self._send_critical(
                    recipient, m.NEIGHBOR_UPDATE,
                    m.NeighborUpdateBody(
                        info=self._my_info(), removed_rect=body.rect
                    ),
                )
            self._send_sync()
            return
        # Cannot merge it back (we re-split since): serve it best-effort
        # until a join fills it, still retracting the stale announcement.
        causal.annotate(
            "decline_caretake",
            owner=str(self.address),
            rect=str(body.rect),
        )
        if body.objects:
            self.owned.store.merge(body.objects)
        if body.subscriptions:
            self.owned.subs.merge(body.subscriptions)
        audience.discard(self.address)
        for recipient in sorted(audience, key=_address_order):
            self._send_critical(
                recipient, m.NEIGHBOR_UPDATE,
                m.NeighborUpdateBody(
                    info=self._my_info(), removed_rect=body.rect
                ),
            )
        self.caretaker_rects.add(body.rect)

    # ------------------------------------------------------------------
    # Application message handling
    # ------------------------------------------------------------------
    def _on_route(self, message: Message) -> None:
        self._handle_route(message.body)

    def _handle_route(self, body: m.RouteBody) -> None:
        if self._forward_to_my_primary(m.ROUTE, body):
            return
        if self._owns_point(body.target) or self._caretaker_for(body.target):
            causal.annotate(
                "route_served",
                executor=str(self.address),
                request_id=body.request_id,
                hops=body.hops,
            )
            self._window_served += 1
            if self.on_deliver is not None:
                self.on_deliver(body.target, body.payload)
            ack = m.RouteDeliveredBody(
                request_id=body.request_id,
                executor=self.address,
                hops=body.hops,
                region=self.owned.rect if self.owned is not None else None,
            )
            self.network.send(self.address, body.origin, m.ROUTE_DELIVERED, ack)
            return
        if not self._route_forward(m.ROUTE, body, body.target):
            # Border target nobody is closer to: answer best-effort.
            ack = m.RouteDeliveredBody(
                request_id=body.request_id,
                executor=self.address,
                hops=body.hops,
                region=self.owned.rect if self.owned is not None else None,
            )
            self.network.send(self.address, body.origin, m.ROUTE_DELIVERED, ack)

    def _on_route_delivered(self, message: Message) -> None:
        body: m.RouteDeliveredBody = message.body
        self._slo_finish(body.request_id)
        if body.region is not None:
            self._learn_shortcut(
                m.NeighborInfo(rect=body.region, primary=body.executor)
            )
        self.delivered.append(body)

    def _on_publish(self, message: Message) -> None:
        self._handle_publish(message.body)

    def _handle_publish(self, body: m.PublishBody) -> None:
        if self._forward_to_my_primary(m.PUBLISH, body):
            return
        if self._owns_point(body.point) or self._caretaker_for(body.point):
            assert self.owned is not None
            self._window_served += 1
            self.owned.items.append((body.point, body.item))
            if self.owned.peer is not None and self.owned.role == "primary":
                self._send_critical(
                    self.owned.peer, m.REPLICATE,
                    m.ReplicateBody(point=body.point, item=body.item),
                )
            if self._sub:
                self._sub_match_publish(body)
            return
        if not self._route_forward(m.PUBLISH, body, body.point):
            if self.owned is not None:
                self.owned.items.append((body.point, body.item))
                if self._sub:
                    self._sub_match_publish(body)

    def _on_replicate(self, message: Message) -> None:
        body: m.ReplicateBody = message.body
        if self.owned is not None and self.owned.role == "secondary":
            self.owned.items.append((body.point, body.item))

    # ------------------------------------------------------------------
    # Location queries with fan-out
    # ------------------------------------------------------------------
    def _on_query(self, message: Message) -> None:
        self._handle_query(message.body)

    def _handle_query(self, body: m.QueryBody) -> None:
        if self._forward_to_my_primary(m.QUERY, body):
            return
        target = body.rect.center
        if self._owns_point(target) or self._caretaker_for(target):
            self._serve_query(body)
            return
        if not self._route_forward(m.QUERY, body, target):
            self._serve_query(body)

    def _on_query_fanout(self, message: Message) -> None:
        body: m.QueryBody = message.body
        if self.owned is None or self.owned.role != "primary":
            return
        # Closed-rect touch, not interior overlap: a region meeting the
        # query rect only at its own northeast corner can still own
        # matching points (point coverage is closed at the high edges).
        if not self.owned.rect.touches(body.rect):
            return
        self._serve_query(body)

    def _serve_query(self, body: m.QueryBody) -> None:
        if body.request_id in self._served_queries:
            return
        self._served_queries.add(body.request_id)
        self._window_served += 1
        assert self.owned is not None
        matches = tuple(
            (point, item)
            for point, item in self.owned.items
            if body.rect.covers(point, closed_low_x=True, closed_low_y=True)
        )
        result = m.QueryResultBody(
            request_id=body.request_id,
            executor=self.address,
            region=self.owned.rect,
            items=matches,
            hops=body.hops,
        )
        self.network.send(self.address, body.origin, m.QUERY_RESULT, result)
        # Fan out to neighbor regions overlapping the query rectangle,
        # exactly as in the paper's subscription example (Section 2.2).
        marked = body.marked_served(self.address)
        for info in self.neighbor_table.values():
            if info.primary in marked.served:
                continue
            if not info.rect.touches(body.rect):
                continue
            endpoint = self._live_endpoint(info)
            if endpoint is None:
                continue
            self.network.send(
                self.address, endpoint, m.QUERY_FANOUT,
                marked.forwarded(),
            )

    def _on_query_result(self, message: Message) -> None:
        body: m.QueryResultBody = message.body
        self._learn_shortcut(
            m.NeighborInfo(rect=body.region, primary=body.executor)
        )
        self.query_results.setdefault(body.request_id, []).append(body)

    # ------------------------------------------------------------------
    # Continuous-query subscriptions (repro.sub)
    # ------------------------------------------------------------------
    def _on_subscribe(self, message: Message) -> None:
        self._handle_subscribe(message.body)

    def _handle_subscribe(self, body: m.SubscribeBody) -> None:
        if not self._sub:
            return
        if self._forward_to_my_primary(m.SUBSCRIBE, body):
            return
        target = body.record.rect.center
        if self._owns_point(target) or self._caretaker_for(target):
            self._serve_subscribe(body)
            return
        if not self._route_forward(m.SUBSCRIBE, body, target):
            self._serve_subscribe(body)

    def _on_sub_fanout(self, message: Message) -> None:
        body: m.SubscribeBody = message.body
        if not self._sub:
            return
        if self.owned is None or self.owned.role != "primary":
            return
        # Closed-rect touch, exactly like query fan-out: a region meeting
        # the watched rect only at a corner can still execute matching
        # events (point coverage is closed at the high edges).
        if not self.owned.rect.touches(body.record.rect):
            return
        self._serve_subscribe(body)

    def _serve_subscribe(self, body: m.SubscribeBody) -> None:
        """Executor side of a registration: index, ack, fan out."""
        if body.request_id in self._served_subs:
            return
        self._served_subs.add(body.request_id)
        self._window_served += 1
        assert self.owned is not None
        self._sub_register(body.record)
        ack = m.SubAckBody(
            request_id=body.request_id,
            executor=self.address,
            hops=body.hops,
            region=self.owned.rect,
        )
        self.network.send(self.address, body.origin, m.SUB_ACK, ack)
        # Fan out to neighbor regions the watched rectangle touches --
        # the paper's standing-query example (Section 2.2) as messages.
        marked = body.marked_served(self.address)
        for info in self.neighbor_table.values():
            if info.primary in marked.served:
                continue
            if not info.rect.touches(body.record.rect):
                continue
            endpoint = self._live_endpoint(info)
            if endpoint is None:
                continue
            self.network.send(
                self.address, endpoint, m.SUB_FANOUT,
                marked.forwarded(),
            )

    def _sub_register(self, record: SubRecord) -> bool:
        """Install one registration locally; replicate when fresh.

        Last-writer-wins by version, so retransmits, fan-out crossings
        and anti-entropy re-sends are idempotent.  Returns whether the
        record won.
        """
        assert self.owned is not None
        fresh = self.owned.subs.upsert(record)
        if fresh:
            obs.inc("sub.node.registered")
            causal.annotate(
                "sub_registered",
                executor=str(self.address),
                sub_id=record.sub_id,
                version=record.version,
            )
            if self.owned.role == "primary" and self.owned.peer is not None:
                self._send_critical(
                    self.owned.peer, m.SUB_REPLICATE,
                    m.SubReplicateBody(record=record),
                )
                obs.inc("sub.node.replicated")
        return fresh

    def _on_sub_replicate(self, message: Message) -> None:
        body: m.SubReplicateBody = message.body
        if not self._sub:
            return
        if self.owned is None or self.owned.role != "secondary":
            return
        self.owned.subs.upsert(body.record)

    def _on_sub_ack(self, message: Message) -> None:
        body: m.SubAckBody = message.body
        self._slo_finish(body.request_id)
        if body.region is not None:
            self._learn_shortcut(
                m.NeighborInfo(rect=body.region, primary=body.executor)
            )
        self.sub_acks[body.request_id] = body
        pending = self._sub_rehome_pending.pop(body.request_id, None)
        if pending is None or body.executor == self.address:
            # Not a rehome ack, or the routed registration dead-ended
            # right back here: keep the copy, the next sweep tries again.
            return
        sub_id, version = pending
        if self.owned is None:
            return
        removed = self.owned.subs.remove(sub_id, version=version)
        if removed is not None:
            obs.inc("sub.node.rehomed")
            causal.annotate(
                "sub_rehome",
                owner=str(self.address),
                executor=str(body.executor),
                sub_id=sub_id,
                version=version,
            )

    def _sub_match_store(self, record: ObjectRecord) -> None:
        """Push a freshly accepted store update to covering subscriptions."""
        assert self.owned is not None
        if not len(self.owned.subs):
            return
        now = self.scheduler.now
        event_key = ("store", str(record.object_id), record.version)
        for sub in self.owned.subs.match(record.point):
            if not sub.is_live_at(now):
                continue
            self._sub_notify(sub, event_key, record.point, record.payload)

    def _sub_match_publish(self, body: m.PublishBody) -> None:
        """Push an accepted publish event to covering subscriptions."""
        assert self.owned is not None
        if not len(self.owned.subs):
            return
        now = self.scheduler.now
        if body.event_id is not None:
            event_key: Tuple[Any, ...] = (
                "pub", str(body.origin), body.event_id
            )
        else:
            # Senders predating the plane carry no event id; fall back to
            # the event's content (dedup then collapses identical events,
            # which is the best an unkeyed publish can get).
            event_key = ("pub", body.point.x, body.point.y, str(body.item))
        for sub in self.owned.subs.match(body.point):
            if not sub.is_live_at(now):
                continue
            self._sub_notify(sub, event_key, body.point, body.item)

    def _sub_notify(
        self,
        sub: SubRecord,
        event_key: Tuple[Any, ...],
        point: Point,
        payload: Any,
    ) -> None:
        """Push one matched event to the subscriber (at-least-once)."""
        obs.inc("sub.node.matched")
        self.vitals.on_sub_match()
        body = m.NotifyBody(
            sub_id=sub.sub_id,
            subscriber=sub.subscriber,
            event_key=event_key,
            point=point,
            payload=payload,
            matched_at=self.scheduler.now,
            executor=self.address,
        )
        self._send_critical(sub.subscriber, m.NOTIFY, body)

    def _on_notify(self, message: Message) -> None:
        body: m.NotifyBody = message.body
        key = (body.sub_id, body.event_key)
        if key in self._notify_seen:
            # A retransmit of an exchange whose ack was lost, or the same
            # event matched at two covering regions.
            obs.inc("sub.node.duplicate_notifies")
            return
        self._notify_seen.add(key)
        obs.inc("sub.node.notified")
        self.notifications.append(body)
        if self._telemetry:
            self._slo_observe(
                "slo.sub.notify_latency",
                self.scheduler._now - body.matched_at,
            )

    def _on_sub_sync(self, message: Message) -> None:
        """Anti-entropy receive: merge live registrations for my ground.

        Last-writer-wins, and only *live* records are merged -- an
        expired lease must never be re-registered by a stale sender (the
        phantom re-registration the lease-sweep regression pins).
        """
        body: m.SubSyncBody = message.body
        if not self._sub or self.owned is None:
            return
        if self.owned.role != "primary":
            return
        if not self.owned.rect.touches(body.rect) and not any(
            rect.touches(body.rect) for rect in self.caretaker_rects
        ):
            return
        now = self.scheduler.now
        repaired = 0
        for record in body.records:
            if not record.is_live_at(now):
                continue
            if not record.rect.touches(self.owned.rect) and not any(
                rect.touches(record.rect) for rect in self.caretaker_rects
            ):
                continue
            if self._sub_register(record):
                repaired += 1
        if repaired:
            obs.inc("sub.node.repaired", repaired)

    def _sub_renewals(self) -> None:
        """Subscriber-side re-assertion of every live lease from here.

        Registered subscriptions are soft state: a region can lose every
        copy at once (its primary crashes while the secondary slot is
        empty), and no amount of handoff bookkeeping can resurrect a
        record nobody holds.  So the subscriber itself re-routes each of
        its live registrations every :attr:`NodeConfig.sub_renew_interval`
        -- the same record with a bumped version (last-writer-wins makes
        this idempotent at holders that never lost it) and an untouched
        ``registered_at``/``duration``, so the absolute expiry stands and
        a lapsed lease is never phantom-re-registered.  Emits nothing
        when this node originated no subscriptions.
        """
        if not self._my_subs:
            return
        now = self.scheduler.now
        for sub_id in list(self._my_subs):
            record = self._my_subs[sub_id]
            if not record.is_live_at(now):
                del self._my_subs[sub_id]
                self._my_sub_asserted.pop(sub_id, None)
                continue
            asserted = self._my_sub_asserted.get(sub_id, 0.0)
            if now - asserted < self.config.sub_renew_interval:
                continue
            renewed = replace(record, version=record.version + 1)
            self._my_subs[sub_id] = renewed
            self._my_sub_asserted[sub_id] = now
            obs.inc("sub.node.renewed")
            causal.annotate(
                "sub_renewed",
                subscriber=str(self.address),
                sub_id=sub_id,
                version=renewed.version,
            )
            self._handle_subscribe(
                m.SubscribeBody(
                    origin=self.address,
                    record=renewed,
                    request_id=next(_request_ids),
                )
            )

    def _sub_lease_grace(self, record: SubRecord) -> float:
        """Deterministic per-(sub, holder) jitter added to lease expiry.

        Hashed, not drawn from ``rng``: sweeps must not perturb the
        seeded random stream (the plane has to be byte-invisible when no
        subscriptions exist), and replicas of one subscription should
        drain within a bounded, deterministic spread rather than in
        lockstep.
        """
        spread = zlib.crc32(
            f"{record.sub_id}|{self.address}".encode("utf-8")
        ) / 2**32
        return self.config.sub_lease_jitter * record.duration * spread

    def _sub_maintenance(self) -> None:
        """Lease sweep + neighbor anti-entropy, on the sync timer.

        Runs in both roles (replicas sweep their own copies; there is no
        eviction protocol to miss).  Primaries then ship every live
        registration touching each neighbor's rect -- healing
        registrations lost to a dropped fan-out, a merge-back, or an
        ownership handover within one sync interval.  Emits nothing when
        the index is empty, so runs without subscriptions stay
        byte-identical to a build without the plane.
        """
        if not self._sub:
            return
        self._sub_renewals()
        if self.owned is None:
            return
        subs = self.owned.subs
        if not len(subs):
            return
        now = self.scheduler.now
        expired = [
            record
            for record in subs.records()
            if now >= record.expires_at() + self._sub_lease_grace(record)
        ]
        for record in expired:
            subs.remove(record.sub_id)
        if expired:
            obs.inc("sub.node.expired", len(expired))
        # Re-home registrations stranded by restructuring: a takeover,
        # merge, or state install can change our territory out from
        # under a record until its rect no longer touches any ground we
        # serve.  Each is re-routed as a fresh SUBSCRIBE toward its
        # rect; the local copy is dropped only once a covering executor
        # acks it (see :meth:`_on_sub_ack`), mirroring the store's
        # rehome path, so a lossy network can never strand the lease.
        self._sub_rehome_pending.clear()
        ground = [self.owned.rect, *self.caretaker_rects]
        for record in subs.records():
            if not record.is_live_at(now):
                continue
            if any(rect.touches(record.rect) for rect in ground):
                continue
            request_id = next(_request_ids)
            self._sub_rehome_pending[request_id] = (
                record.sub_id, record.version,
            )
            self._handle_subscribe(
                m.SubscribeBody(
                    origin=self.address,
                    record=record,
                    request_id=request_id,
                )
            )
        if self.owned.role != "primary" or not len(subs):
            return
        for info in self.neighbor_table.values():
            if info.primary == self.address:
                continue
            records = tuple(
                record
                for record in subs.touching(info.rect)
                if record.is_live_at(now)
            )
            if not records:
                continue
            self.network.send(
                self.address, info.primary, m.SUB_SYNC,
                m.SubSyncBody(rect=info.rect, records=records),
            )

    # ------------------------------------------------------------------
    # Location store: data plane
    # ------------------------------------------------------------------
    def _on_store_update(self, message: Message) -> None:
        self._handle_store_update(message.body)

    def _handle_store_update(self, body: m.StoreUpdateBody) -> None:
        if self._forward_to_my_primary(m.STORE_UPDATE, body):
            return
        point = body.record.point
        if self._owns_point(point) or self._caretaker_for(point):
            self._store_accept_update(body)
            return
        if not self._route_forward(m.STORE_UPDATE, body, point):
            # Border position nobody is closer to: store best-effort here,
            # mirroring the route/publish border rule.
            if self.owned is not None:
                self._store_accept_update(body)

    def _store_accept_update(self, body: m.StoreUpdateBody) -> None:
        """Executor side of a store update: insert, replicate, ack."""
        assert self.owned is not None
        self._window_served += 1
        record = body.record
        fresh = self.owned.store.upsert(record)
        causal.annotate(
            "store_update_served",
            executor=str(self.address),
            object_id=str(record.object_id),
            version=record.version,
            fresh=fresh,
            hops=body.hops,
        )
        obs.inc("store.node.updates")
        if fresh:
            if self.owned.role == "primary" and self.owned.peer is not None:
                self._send_critical(
                    self.owned.peer, m.STORE_REPLICATE,
                    m.StoreReplicateBody(record=record),
                )
                obs.inc("store.node.replicated")
            if self._sub:
                self._sub_match_store(record)
            if body.prev_point is not None and not self._covers(
                self.owned.rect, body.prev_point
            ):
                # The object crossed a region boundary: evict the stale
                # copy at its old home (versioned, so a newer update
                # there wins any race).
                self._handle_store_remove(
                    m.StoreRemoveBody(
                        object_id=record.object_id,
                        point=body.prev_point,
                        version=record.version,
                    )
                )
        else:
            obs.inc("store.node.stale_updates")
        ack = m.StoreAckBody(
            request_id=body.request_id,
            executor=self.address,
            hops=body.hops,
            region=self.owned.rect,
        )
        self.network.send(self.address, body.origin, m.STORE_ACK, ack)

    def _on_store_remove(self, message: Message) -> None:
        self._handle_store_remove(message.body)

    def _handle_store_remove(self, body: m.StoreRemoveBody) -> None:
        if self._forward_to_my_primary(m.STORE_REMOVE, body):
            return
        if self._owns_point(body.point) or self._caretaker_for(body.point):
            assert self.owned is not None
            removed = self.owned.store.remove(
                body.object_id, version=body.version
            )
            if removed is not None:
                obs.inc("store.node.evicted")
                if (
                    self.owned.role == "primary"
                    and self.owned.peer is not None
                ):
                    self._send_critical(
                        self.owned.peer, m.STORE_REPLICATE,
                        m.StoreReplicateBody(
                            removed_id=body.object_id,
                            removed_version=body.version,
                        ),
                    )
            return
        if not self._route_forward(m.STORE_REMOVE, body, body.point):
            if self.owned is not None:
                self.owned.store.remove(body.object_id, version=body.version)

    def _on_store_ack(self, message: Message) -> None:
        body: m.StoreAckBody = message.body
        self._slo_finish(body.request_id)
        if body.region is not None:
            self._learn_shortcut(
                m.NeighborInfo(rect=body.region, primary=body.executor)
            )
        self.store_acks[body.request_id] = body
        pending = self._rehome_pending.pop(body.request_id, None)
        if pending is None or body.executor == self.address:
            # Not a rehome ack, or the routed update dead-ended right
            # back here: keep the copy, the next sweep tries again.
            return
        object_id, version = pending
        if self.owned is None:
            return
        removed = self.owned.store.remove(object_id, version=version)
        if removed is not None:
            obs.inc("store.node.rehomed")
            causal.annotate(
                "store_rehome",
                owner=str(self.address),
                executor=str(body.executor),
                object_id=str(object_id),
                version=version,
            )
            if self.owned.peer is not None:
                self._send_critical(
                    self.owned.peer, m.STORE_REPLICATE,
                    m.StoreReplicateBody(
                        removed_id=object_id, removed_version=version
                    ),
                )

    def _rehome_misplaced(self) -> None:
        """Route records our territory does not cover back to their home.

        Misplaced records enter through best-effort dead-end accepts and
        through stores shipped by yielding owners whose region differed
        from ours (a stale ownership claim arriving right after a
        switch).  Each is re-sent as a normal routed update; the local
        copy is dropped only once the covering executor acks it (see
        :meth:`_on_store_ack`), so a lossy network can never lose the
        only copy mid-rehome.  Runs on the sync timer.
        """
        if self.owned is None or self.owned.role != "primary":
            return
        self._rehome_pending.clear()
        for record in self.owned.store.records():
            if self._covers(self.owned.rect, record.point):
                continue
            if any(
                self._covers(hole, record.point)
                for hole in self.caretaker_rects
            ):
                continue  # legitimately served here until the hole fills
            request_id = next(_request_ids)
            self._rehome_pending[request_id] = (
                record.object_id, record.version,
            )
            self._handle_store_update(
                m.StoreUpdateBody(
                    origin=self.address,
                    record=record,
                    request_id=request_id,
                )
            )

    # ------------------------------------------------------------------
    # Location store: range lookups with fan-out
    # ------------------------------------------------------------------
    def _on_store_lookup(self, message: Message) -> None:
        self._handle_store_lookup(message.body)

    def _handle_store_lookup(self, body: m.StoreLookupBody) -> None:
        target = body.rect.center
        if (
            self.owned is not None
            and self.owned.role == "secondary"
            and self._covers(self.owned.rect, target)
        ):
            # Dual-peer reads: the replica can answer for its own region
            # directly instead of relaying to the primary.
            self._serve_store_lookup(body, from_replica=True)
            return
        if self._forward_to_my_primary(m.STORE_LOOKUP, body):
            return
        if self._owns_point(target) or self._caretaker_for(target):
            self._serve_store_lookup(body)
            return
        if not self._route_forward(m.STORE_LOOKUP, body, target):
            self._serve_store_lookup(body)

    def _on_store_fanout(self, message: Message) -> None:
        body: m.StoreLookupBody = message.body
        if self.owned is None:
            return
        if not self.owned.rect.touches(body.rect):
            return
        # Primary or secondary alike may serve the fan-out: the sender
        # falls back to the replica endpoint when the primary is suspected.
        self._serve_store_lookup(
            body, from_replica=self.owned.role == "secondary"
        )

    def _serve_store_lookup(
        self, body: m.StoreLookupBody, from_replica: bool = False
    ) -> None:
        if body.request_id in self._served_store_lookups:
            return
        self._served_store_lookups.add(body.request_id)
        self._window_served += 1
        assert self.owned is not None
        matches = tuple(self.owned.store.query(body.rect))
        result = m.StoreResultBody(
            request_id=body.request_id,
            executor=self.address,
            region=self.owned.rect,
            records=matches,
            hops=body.hops,
            from_replica=from_replica,
        )
        obs.inc("store.node.lookups_served")
        self.network.send(self.address, body.origin, m.STORE_RESULT, result)
        # Fan out to neighbor regions overlapping the lookup rectangle.
        # A replica serving for a dead primary uses the replicated
        # neighbor table it would activate on failover.
        marked = body.marked_served(self.address)
        if self.owned.peer is not None:
            marked = marked.marked_served(self.owned.peer)
        neighbors = self.neighbor_table.values()
        if from_replica and not self.neighbor_table:
            neighbors = list(self._replicated_neighbors)
        for info in neighbors:
            if info.primary in marked.served:
                continue
            if not info.rect.touches(body.rect):
                continue
            endpoint = self._live_endpoint(info)
            if endpoint is None or endpoint in marked.served:
                continue
            self.network.send(
                self.address, endpoint, m.STORE_FANOUT, marked.forwarded()
            )

    def _on_store_result(self, message: Message) -> None:
        body: m.StoreResultBody = message.body
        self._slo_finish(body.request_id)
        if not body.from_replica:
            # Replica answers name the secondary as executor; caching that
            # as a region's primary would poison the entry.
            self._learn_shortcut(
                m.NeighborInfo(rect=body.region, primary=body.executor)
            )
        self.store_results.setdefault(body.request_id, []).append(body)

    # ------------------------------------------------------------------
    # Location store: replication and anti-entropy
    # ------------------------------------------------------------------
    def _on_store_replicate(self, message: Message) -> None:
        body: m.StoreReplicateBody = message.body
        if self.owned is None or self.owned.role != "secondary":
            return
        if body.record is not None:
            self.owned.store.upsert(body.record)
        elif body.removed_id is not None:
            self.owned.store.remove(
                body.removed_id, version=body.removed_version
            )

    def _send_store_sync(self) -> None:
        """Ship the primary's store digest to its secondary (sync timer).

        A store that was never populated sends nothing: deployments that
        never touch the location store pay zero extra messages.  But a
        store that held records and emptied again (a split that rehomed
        everything away, churned ownership) keeps announcing its -- now
        empty -- digest: the secondary may still replicate the old
        content, and without a digest to diff against the stale replica
        diverges forever.
        """
        assert self.owned is not None and self.owned.peer is not None
        if len(self.owned.store):
            self._store_announced = True
        elif not self._store_announced:
            return
        digest = tuple(sorted(self.owned.store.digest().items()))
        self.network.send(
            self.address, self.owned.peer, m.STORE_SYNC,
            m.StoreSyncBody(rect=self.owned.rect, digest=digest),
        )

    def _on_store_sync(self, message: Message) -> None:
        body: m.StoreSyncBody = message.body
        if (
            self.owned is None
            or self.owned.role != "secondary"
            or message.source != self.owned.peer
        ):
            return
        divergent = self.owned.store.diff_keys(dict(body.digest))
        # Anti-entropy debt: how far this replica trails its primary,
        # surfaced through the next vitals digest.
        self._anti_entropy_debt = len(divergent)
        if not divergent:
            return
        bounded = tuple(divergent[: self.config.store_repair_max_buckets])
        obs.inc("store.node.repair_pulls")
        causal.annotate(
            "store_antientropy_pull",
            replica=str(self.address),
            primary=str(message.source),
            divergent=len(divergent),
            pulled=len(bounded),
        )
        self.network.send(
            self.address, message.source, m.STORE_PULL,
            m.StorePullBody(rect=body.rect, keys=bounded),
        )

    def _on_store_pull(self, message: Message) -> None:
        body: m.StorePullBody = message.body
        if (
            self.owned is None
            or self.owned.role != "primary"
            or message.source != self.owned.peer
        ):
            return
        buckets = tuple(
            (key, tuple(self.owned.store.bucket_records(key)))
            for key in body.keys
        )
        self.network.send(
            self.address, message.source, m.STORE_REPAIR,
            m.StoreRepairBody(rect=self.owned.rect, buckets=buckets),
        )

    def _on_store_repair(self, message: Message) -> None:
        body: m.StoreRepairBody = message.body
        if self.owned is None:
            return
        if body.authoritative:
            # Our primary answering a pull: its bucket content replaces
            # ours wholesale (still LWW per record, so a racing fresher
            # replication is not clobbered).
            if (
                self.owned.role != "secondary"
                or message.source != self.owned.peer
            ):
                return
            changed = 0
            for key, records in body.buckets:
                changed += self.owned.store.replace_bucket(key, records)
            if changed:
                obs.inc("store.node.repaired_records", changed)
        else:
            # A yielding owner shipping its store to us: merge LWW.
            merged = self.owned.store.merge(
                record for _, records in body.buckets for record in records
            )
            if merged:
                obs.inc("store.node.repaired_records", merged)
                if self.owned.role == "primary" and self.owned.peer is not None:
                    for _, records in body.buckets:
                        for record in records:
                            self._send_critical(
                                self.owned.peer, m.STORE_REPLICATE,
                                m.StoreReplicateBody(record=record),
                            )
                # The yielder's region may differ from ours (it lost a
                # stale-claim fight for territory we no longer serve):
                # adopt the records for safety, then route the strays to
                # whoever actually covers them.
                self._rehome_misplaced()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        role = self.owned.role if self.owned is not None else "none"
        return (
            f"ProtocolNode(id={self.node.node_id}, role={role}, "
            f"alive={self.alive})"
        )
