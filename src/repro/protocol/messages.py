"""Protocol message kinds and bodies.

Two families, exactly as Section 2.2 describes: *management* messages
(join, split, neighbor-table maintenance, heartbeats) whose syntax the
middleware defines, and *application* messages (routed requests, queries,
publications) that must carry the geographical coordinate of their
destination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Hashable, Optional, Tuple

from repro.geometry import Point, Rect
from repro.core.node import NodeAddress
from repro.store.spatial import BucketKey, ObjectRecord
from repro.sub.records import SubRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.obs.telemetry import VitalsDigest

# ---------------------------------------------------------------------
# Management message kinds
# ---------------------------------------------------------------------
JOIN_REQUEST = "join_request"
JOIN_GRANT = "join_grant"
GRANT_DECLINE = "grant_decline"
NEIGHBOR_UPDATE = "neighbor_update"
HEARTBEAT = "heartbeat"
PERIMETER_PROBE = "perimeter_probe"
SYNC_STATE = "sync_state"
DEPART = "depart"
SECONDARY_RELEASED = "secondary_released"
SWITCH_REQUEST = "switch_request"
SWITCH_ACCEPT = "switch_accept"
SWITCH_REJECT = "switch_reject"
SHED = "shed"

# ---------------------------------------------------------------------
# Application message kinds
# ---------------------------------------------------------------------
ROUTE = "route"
ROUTE_DELIVERED = "route_delivered"
SHORTCUT_HOP = "shortcut_hop"
MISROUTE = "misroute"
QUERY = "query"
QUERY_FANOUT = "query_fanout"
QUERY_RESULT = "query_result"
PUBLISH = "publish"
REPLICATE = "replicate"

# ---------------------------------------------------------------------
# Reliable-exchange envelope kinds (the repro.protocol.reliable substrate)
# ---------------------------------------------------------------------
RELIABLE = "reliable"
RELIABLE_ACK = "reliable_ack"

# ---------------------------------------------------------------------
# Location-store message kinds (the repro.store data plane)
# ---------------------------------------------------------------------
STORE_UPDATE = "store_update"
STORE_REMOVE = "store_remove"
STORE_ACK = "store_ack"
STORE_LOOKUP = "store_lookup"
STORE_FANOUT = "store_fanout"
STORE_RESULT = "store_result"
STORE_REPLICATE = "store_replicate"
STORE_SYNC = "store_sync"
STORE_PULL = "store_pull"
STORE_REPAIR = "store_repair"

# ---------------------------------------------------------------------
# Continuous-query message kinds (the repro.sub subscription plane)
# ---------------------------------------------------------------------
SUBSCRIBE = "subscribe"
SUB_FANOUT = "sub_fanout"
SUB_ACK = "sub_ack"
SUB_REPLICATE = "sub_replicate"
SUB_SYNC = "sub_sync"
NOTIFY = "notify"


@dataclass(frozen=True)
class NeighborInfo:
    """One neighbor-table entry: a region and its owner endpoints."""

    rect: Rect
    primary: NodeAddress
    secondary: Optional[NodeAddress] = None

    def with_secondary(self, secondary: Optional[NodeAddress]) -> "NeighborInfo":
        """Copy with the secondary slot replaced."""
        return NeighborInfo(self.rect, self.primary, secondary)

    def with_primary(self, primary: NodeAddress) -> "NeighborInfo":
        """Copy with the primary endpoint replaced."""
        return NeighborInfo(self.rect, primary, self.secondary)


@dataclass(frozen=True)
class JoinRequestBody:
    """A join request being routed toward the joiner's coordinate."""

    joiner: NodeAddress
    coord: Point
    capacity: float
    hops: int = 0
    #: The joiner's attempt counter; echoed in the grant so the joiner can
    #: recognize (and decline) grants from superseded retry attempts.
    nonce: int = 0

    def forwarded(self) -> "JoinRequestBody":
        """Copy with the hop count bumped."""
        return JoinRequestBody(
            joiner=self.joiner,
            coord=self.coord,
            capacity=self.capacity,
            hops=self.hops + 1,
            nonce=self.nonce,
        )


@dataclass(frozen=True)
class JoinGrantBody:
    """The covering owner's answer: here is your region (or slot)."""

    #: ``"primary"`` after a split, ``"secondary"`` when filling a slot.
    role: str
    rect: Rect
    #: The other owner of the region (the granter, usually).
    peer: Optional[NodeAddress]
    #: The granter's neighbor table, pre-filtered for the granted rect.
    neighbors: Tuple[NeighborInfo, ...]
    #: Replicated geo-items (secondary grants ship the store).
    items: Tuple[Tuple[Point, Any], ...] = ()
    #: Echo of the join request's nonce.
    nonce: int = 0
    #: Location-store records riding the grant: a split hands the new
    #: half's objects, a secondary grant seeds the replica.
    objects: Tuple[ObjectRecord, ...] = ()
    #: Continuous-query registrations riding the grant the same way: a
    #: split hands every subscription touching the new half, a secondary
    #: grant seeds the replica.
    subscriptions: Tuple[SubRecord, ...] = ()


@dataclass(frozen=True)
class ReliableBody:
    """Envelope of one reliable exchange: the wrapped message plus a nonce.

    A split grant is the only copy of the handed half's records while in
    flight (likewise a departure handoff, a replication delta, or a
    merge-back retraction); the sender retransmits this envelope until a
    matching :class:`ReliableAckBody` arrives, so one dropped message
    cannot lose them.  The receiver acks every sighting and deduplicates
    on ``(source, nonce)`` before dispatching the inner message.
    """

    #: Sender-scoped exchange identifier matching envelope to ack.
    nonce: int
    #: Message kind of the wrapped payload.
    kind: str
    #: The wrapped payload body, dispatched as if it arrived raw.
    body: Any
    #: 1-based transmission counter (diagnostics only).
    attempt: int = 1


@dataclass(frozen=True)
class ReliableAckBody:
    """The receiver confirms a reliable envelope arrived."""

    nonce: int


@dataclass(frozen=True)
class GrantDeclineBody:
    """A joiner refuses a (duplicate) grant; the granter takes it back."""

    role: str
    rect: Rect
    items: Tuple[Tuple[Point, Any], ...] = ()
    #: Location-store records returned with the declined region.
    objects: Tuple[ObjectRecord, ...] = ()
    #: Continuous-query registrations returned with the declined region.
    subscriptions: Tuple[SubRecord, ...] = ()


@dataclass(frozen=True)
class NeighborUpdateBody:
    """Install/refresh (or retract) one neighbor-table entry."""

    info: NeighborInfo
    #: When set, the entry for ``removed_rect`` must be dropped (it was
    #: split, merged away, or its owners died).
    removed_rect: Optional[Rect] = None


@dataclass(frozen=True)
class HeartbeatBody:
    """I am alive and I own ``rect`` in role ``role``.

    Neighbor heartbeats also gossip the sender's neighbor table; receivers
    adopt entries adjacent to their own region that they are missing,
    which transitively heals tables torn by lost updates or failovers.
    """

    rect: Rect
    role: str
    secondary: Optional[NodeAddress] = None
    neighbors: Tuple["NeighborInfo", ...] = ()
    #: The sender's workload index (served load / capacity) and raw
    #: capacity -- the "workload statistic information" nodes periodically
    #: exchange with their neighbors (Section 2.4).
    index: float = 0.0
    capacity: float = 0.0
    #: Holes the sender is currently caretaking.  A hole has no owner to
    #: heartbeat it into anyone's neighbor table, so this is the only
    #: channel telling the hole's other neighbors which live node serves
    #: that ground (receivers cache it as a routing shortcut).
    caretaken: Tuple[Rect, ...] = ()
    #: The sender's piggybacked telemetry digest (the in-band telemetry
    #: plane rides existing heartbeats -- no new round-trips).  ``None``
    #: on peer heartbeats and when ``NodeConfig.telemetry_enabled`` is
    #: off; receivers fold it into their neighborhood health view.
    vitals: Optional["VitalsDigest"] = None
    #: Consecutive heartbeat ticks (including this one) on which the
    #: sender addressed *this* receiver.  Neighbor-set churn silently
    #: pauses a sender's heartbeats to a peer; without this attestation
    #: the resulting arrival gap is indistinguishable from in-flight
    #: loss, and the health view would blame a healthy node for it.
    #: ``0`` means the sender does not attest (telemetry off).
    vitals_streak: int = 0
    #: The sender's ingress backpressure in [0, 1]: current queue depth
    #: over its capacity-scaled admission budget.  Rides next to the
    #: workload stats above so routing can deflect greedy forwarding
    #: around saturated neighbors without new message rounds.  ``0.0``
    #: when ``NodeConfig.overload_enabled`` is off.
    pressure: float = 0.0


def heartbeat_with_streak(beat: HeartbeatBody, streak: int) -> HeartbeatBody:
    """A copy of ``beat`` carrying ``vitals_streak=streak``.

    Equivalent to ``dataclasses.replace(beat, vitals_streak=streak)``
    but roughly 3x cheaper: the telemetry plane stamps one copy per
    neighbor per heartbeat tick, and ``replace()`` re-runs the frozen
    ``__init__``, which pays an ``object.__setattr__`` per field.
    """
    clone = object.__new__(HeartbeatBody)
    clone.__dict__.update(beat.__dict__)
    clone.__dict__["vitals_streak"] = streak
    return clone


@dataclass(frozen=True)
class ShedBody:
    """NACK for a request dropped by ingress admission control.

    An overloaded node sheds low-priority inbound traffic instead of
    queueing it unboundedly; when the shed request named its origin,
    this tells that origin *why* nothing came back -- a deliberate local
    decision, not loss -- and when to try again.  Reliable-wrapped
    payloads are shed silently instead: their sender's retry/backoff
    schedule already is the retry-after mechanism.
    """

    #: Wire kind of the shed request.
    kind: str
    #: The shed request's correlation id, echoed so the origin can close
    #: its pending-request entry.
    request_id: int
    #: Suggested back-off in sim-seconds, scaled by how far past its
    #: admission budget the shedder currently is.
    retry_after: float
    #: The shedder's ingress queue depth at the moment of the shed.
    depth: int = 0


@dataclass(frozen=True)
class PerimeterProbeBody:
    """A primary's self-repair probe for an uncovered perimeter stretch.

    Grants born inside an incomplete neighborhood (a caretaker filling a
    hole it only partly understands) can leave two adjacent primaries
    mutually blind -- neither heartbeats the other, so the usual
    heartbeat gossip never bridges the gap.  The probe is routed
    greedily toward ``point`` (just outside the prober's uncovered
    edge); whichever live node serves that ground installs the prober's
    claim and answers with a direct heartbeat, healing both tables.
    ``visited`` prevents forwarding loops; ``ttl`` bounds undeliverable
    probes.
    """

    #: The prober's own claim (rect + endpoints).
    info: NeighborInfo
    #: The coordinate being probed (just outside the prober's region).
    point: Point
    ttl: int = 16
    visited: Tuple[NodeAddress, ...] = ()

    def forwarded(self, via: NodeAddress) -> "PerimeterProbeBody":
        """Copy with ``via`` recorded and the ttl decremented."""
        return PerimeterProbeBody(
            info=self.info,
            point=self.point,
            ttl=self.ttl - 1,
            visited=self.visited + (via,),
        )


@dataclass(frozen=True)
class SyncStateBody:
    """Primary-to-secondary state synchronization."""

    rect: Rect
    neighbors: Tuple[NeighborInfo, ...]
    items: Tuple[Tuple[Point, Any], ...]


@dataclass(frozen=True)
class RouteBody:
    """A generic routed request addressed by coordinate."""

    origin: NodeAddress
    target: Point
    payload: Any
    request_id: int
    hops: int = 0

    def forwarded(self) -> "RouteBody":
        """Copy with the hop count bumped."""
        return RouteBody(
            origin=self.origin,
            target=self.target,
            payload=self.payload,
            request_id=self.request_id,
            hops=self.hops + 1,
        )


@dataclass(frozen=True)
class RouteDeliveredBody:
    """Acknowledgment from the executor back to the origin."""

    request_id: int
    executor: NodeAddress
    hops: int
    #: The executor's region rectangle; lets the origin learn a routing
    #: shortcut from the return path (``None`` from older senders).
    region: Optional[Rect] = None


@dataclass(frozen=True)
class ShortcutHopBody:
    """A routed request jumping over a learned long-range shortcut.

    The inner routed message (``kind`` + ``body``) is wrapped rather than
    sent raw so the receiver can tell a shortcut hop from a plain
    neighbor hop: a shortcut may land on a node whose region no longer
    matches ``claimed_rect``, and only the wrapped form carries enough
    context (``target``, ``sender_distance``) for the receiver to either
    keep routing -- any strict-progress hop preserves greedy termination
    -- or bounce a :class:`MisrouteBody` back to repair the sender's
    cache.
    """

    #: Message kind of the wrapped routed request.
    kind: str
    #: The wrapped request body (hop count already bumped by the sender).
    body: Any
    #: The coordinate the wrapped request is routed toward.
    target: Point
    #: The region rectangle the sender's cache entry claimed.
    claimed_rect: Rect
    #: The sender's own region-to-target distance at send time; the
    #: receiver must beat it strictly to keep the greedy bound.
    sender_distance: float


@dataclass(frozen=True)
class MisrouteBody:
    """NACK for a shortcut hop that landed on a non-covering node.

    Returns the wrapped request so the sender can immediately re-route it
    over the plain neighbor walk, plus the receiver's actual claim (and
    a covering suggestion from its neighbor table, when it has one) so
    the stale cache entry is repaired rather than merely evicted.
    """

    #: Message kind of the bounced routed request.
    kind: str
    #: The bounced request body, unchanged.
    body: Any
    #: The coordinate the bounced request was routed toward.
    target: Point
    #: The stale cache entry that caused the misroute.
    claimed_rect: Rect
    #: What the receiver actually owns right now (``None`` while it is
    #: itself between regions, e.g. mid-join).
    actual: Optional[NeighborInfo] = None
    #: A neighbor-table entry of the receiver covering ``target``.
    suggestion: Optional[NeighborInfo] = None


@dataclass(frozen=True)
class QueryBody:
    """A location query: spatial rect + optional payload filter tag."""

    origin: NodeAddress
    rect: Rect
    request_id: int
    hops: int = 0
    #: Addresses that already served this query (fan-out dedup).
    served: Tuple[NodeAddress, ...] = ()

    def forwarded(self) -> "QueryBody":
        """Copy with the hop count bumped."""
        return QueryBody(
            origin=self.origin,
            rect=self.rect,
            request_id=self.request_id,
            hops=self.hops + 1,
            served=self.served,
        )

    def marked_served(self, address: NodeAddress) -> "QueryBody":
        """Copy with ``address`` appended to the served set."""
        return QueryBody(
            origin=self.origin,
            rect=self.rect,
            request_id=self.request_id,
            hops=self.hops,
            served=self.served + (address,),
        )


@dataclass(frozen=True)
class QueryResultBody:
    """One executor's partial answer to a location query."""

    request_id: int
    executor: NodeAddress
    region: Rect
    items: Tuple[Tuple[Point, Any], ...]
    hops: int


@dataclass(frozen=True)
class PublishBody:
    """A geo-tagged item to be stored at the covering region."""

    origin: NodeAddress
    point: Point
    item: Any
    hops: int = 0
    #: Origin-scoped event identifier; subscription NOTIFY dedup keys on
    #: it (``None`` from senders predating the subscription plane).
    event_id: Optional[int] = None

    def forwarded(self) -> "PublishBody":
        """Copy with the hop count bumped."""
        return PublishBody(
            origin=self.origin,
            point=self.point,
            item=self.item,
            hops=self.hops + 1,
            event_id=self.event_id,
        )


@dataclass(frozen=True)
class ReplicateBody:
    """Primary tells its secondary about one new stored item."""

    point: Point
    item: Any


@dataclass(frozen=True)
class RegionStateBody:
    """A region's full transferable state (primary-switch handoff)."""

    rect: Rect
    #: The region's secondary owner, if any (stays with the region).
    peer: Optional[NodeAddress]
    items: Tuple[Tuple[Point, Any], ...]
    neighbors: Tuple[NeighborInfo, ...]
    #: Location-store records moving with the region.
    objects: Tuple[ObjectRecord, ...] = ()
    #: Continuous-query registrations moving with the region.
    subscriptions: Tuple[SubRecord, ...] = ()


@dataclass(frozen=True)
class SwitchRequestBody:
    """Mechanism (b) over messages: an overloaded primary proposes to
    switch positions with a stronger, cooler neighbor primary."""

    #: The initiator's region state, ready to install on acceptance.
    state: RegionStateBody
    initiator_capacity: float
    initiator_index: float


@dataclass(frozen=True)
class SwitchAcceptBody:
    """The counterpart's region state; receiving it completes the swap."""

    state: RegionStateBody


@dataclass(frozen=True)
class SwitchRejectBody:
    """The proposal was declined (capacity, load, or a concurrent swap)."""

    reason: str


@dataclass(frozen=True)
class SecondaryReleasedBody:
    """A primary tells a node it no longer holds the secondary slot.

    Sent when an evicted (or superseded) secondary keeps heartbeating; the
    receiver abandons its stale role and rejoins the network from scratch,
    healing primary/secondary disagreement."""

    rect: Rect


@dataclass(frozen=True)
class DepartBody:
    """Graceful departure announcement with region handoff."""

    rect: Rect
    #: Items handed to the surviving peer or adopter.
    items: Tuple[Tuple[Point, Any], ...]
    #: Location-store records handed with the region.
    objects: Tuple[ObjectRecord, ...] = ()
    #: Continuous-query registrations handed with the region.
    subscriptions: Tuple[SubRecord, ...] = ()


# ---------------------------------------------------------------------
# Location-store bodies
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class StoreUpdateBody:
    """A moving object's position report, routed to the covering region.

    ``prev_point`` is where the reporter last placed the object; when the
    update lands in a different region, the executor routes a versioned
    :class:`StoreRemoveBody` toward it to evict the stale copy.
    """

    origin: NodeAddress
    record: ObjectRecord
    request_id: int
    prev_point: Optional[Point] = None
    hops: int = 0

    def forwarded(self) -> "StoreUpdateBody":
        """Copy with the hop count bumped."""
        return StoreUpdateBody(
            origin=self.origin,
            record=self.record,
            request_id=self.request_id,
            prev_point=self.prev_point,
            hops=self.hops + 1,
        )


@dataclass(frozen=True)
class StoreRemoveBody:
    """Versioned eviction of a stale copy, routed toward its old position.

    Only copies at or below ``version`` are removed, so an eviction that
    loses a race with a newer update (the object moved back) is a no-op.
    """

    object_id: Hashable
    point: Point
    version: int
    hops: int = 0

    def forwarded(self) -> "StoreRemoveBody":
        """Copy with the hop count bumped."""
        return StoreRemoveBody(
            object_id=self.object_id,
            point=self.point,
            version=self.version,
            hops=self.hops + 1,
        )


@dataclass(frozen=True)
class StoreAckBody:
    """The executor's acknowledgment of a stored update."""

    request_id: int
    executor: NodeAddress
    hops: int
    #: The executor's region rectangle; lets the origin learn a routing
    #: shortcut from the return path (``None`` from older senders).
    region: Optional[Rect] = None


@dataclass(frozen=True)
class StoreLookupBody:
    """A range lookup over stored objects; fans out like a query."""

    origin: NodeAddress
    rect: Rect
    request_id: int
    hops: int = 0
    #: Addresses that already served this lookup (fan-out dedup).
    served: Tuple[NodeAddress, ...] = ()

    def forwarded(self) -> "StoreLookupBody":
        """Copy with the hop count bumped."""
        return StoreLookupBody(
            origin=self.origin,
            rect=self.rect,
            request_id=self.request_id,
            hops=self.hops + 1,
            served=self.served,
        )

    def marked_served(self, address: NodeAddress) -> "StoreLookupBody":
        """Copy with ``address`` appended to the served set."""
        return StoreLookupBody(
            origin=self.origin,
            rect=self.rect,
            request_id=self.request_id,
            hops=self.hops,
            served=self.served + (address,),
        )


@dataclass(frozen=True)
class StoreResultBody:
    """One region's partial answer to a store range lookup."""

    request_id: int
    executor: NodeAddress
    region: Rect
    records: Tuple[ObjectRecord, ...]
    hops: int
    #: Whether a secondary replica served this (primary unreachable).
    from_replica: bool = False


@dataclass(frozen=True)
class StoreReplicateBody:
    """Synchronous primary-to-secondary replication of one store change.

    Exactly one of ``record`` (an upsert) or ``removed_id`` (a versioned
    eviction) is set.
    """

    record: Optional[ObjectRecord] = None
    removed_id: Optional[Hashable] = None
    removed_version: int = 0


@dataclass(frozen=True)
class StoreSyncBody:
    """Primary's per-bucket store digest, sent on the sync timer.

    The secondary diffs this against its replica and pulls divergent
    buckets -- the bounded anti-entropy pass that repairs lossy handover.
    """

    rect: Rect
    digest: Tuple[Tuple[BucketKey, int], ...]


@dataclass(frozen=True)
class StorePullBody:
    """Secondary asks its primary for the content of divergent buckets."""

    rect: Rect
    keys: Tuple[BucketKey, ...]


@dataclass(frozen=True)
class StoreRepairBody:
    """Authoritative bucket contents answering a pull (or a handoff).

    When ``authoritative`` is set the receiver replaces each named
    bucket's content wholesale; otherwise the records are merged
    last-writer-wins (used when a yielding owner ships its store to the
    winner of an ownership conflict).
    """

    rect: Rect
    buckets: Tuple[Tuple[BucketKey, Tuple[ObjectRecord, ...]], ...]
    authoritative: bool = True


# ---------------------------------------------------------------------
# Continuous-query bodies (the repro.sub subscription plane)
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class SubscribeBody:
    """A continuous-query registration, routed to the covering region.

    Routes greedily to the center of the watched rectangle, then fans
    out (:data:`SUB_FANOUT`) to every region the rectangle touches,
    exactly like a range query -- a subscription must be registered at
    *every* primary that can execute a matching event.
    """

    origin: NodeAddress
    record: SubRecord
    request_id: int
    hops: int = 0
    #: Addresses that already registered this subscription (fan-out dedup).
    served: Tuple[NodeAddress, ...] = ()

    def forwarded(self) -> "SubscribeBody":
        """Copy with the hop count bumped."""
        return SubscribeBody(
            origin=self.origin,
            record=self.record,
            request_id=self.request_id,
            hops=self.hops + 1,
            served=self.served,
        )

    def marked_served(self, address: NodeAddress) -> "SubscribeBody":
        """Copy with ``address`` appended to the served set."""
        return SubscribeBody(
            origin=self.origin,
            record=self.record,
            request_id=self.request_id,
            hops=self.hops,
            served=self.served + (address,),
        )


@dataclass(frozen=True)
class SubAckBody:
    """One covering primary's acknowledgment of a registration."""

    request_id: int
    executor: NodeAddress
    hops: int
    #: The executor's region rectangle; lets the origin learn a routing
    #: shortcut from the return path.
    region: Optional[Rect] = None


@dataclass(frozen=True)
class SubReplicateBody:
    """Synchronous primary-to-secondary replication of one registration.

    There is no removal variant: leases expire by sweep on both roles
    independently, so replicas converge without an eviction protocol.
    """

    record: SubRecord


@dataclass(frozen=True)
class SubSyncBody:
    """Registrations touching the receiver's region, sent on the sync timer.

    The subscription plane's anti-entropy: each primary periodically
    ships its neighbors (and, after an ownership handover, the new
    owner) every live registration touching their rect.  Receivers merge
    last-writer-wins, which heals registrations lost to a dropped
    fan-out, a merge-back, or a caretaker transition within one sync
    interval.
    """

    rect: Rect
    records: Tuple[SubRecord, ...]


@dataclass(frozen=True)
class NotifyBody:
    """A matched event pushed back to the subscriber (at-least-once).

    Delivery rides the reliable channel, so retransmits and multi-region
    matches can duplicate; the subscriber deduplicates on
    ``(sub_id, event_key)``.
    """

    sub_id: str
    subscriber: NodeAddress
    #: Deduplication key identifying the matched event: store updates
    #: key on ``("store", object_id, version)``, publishes on
    #: ``("pub", origin, event_id)``.
    event_key: Tuple[Any, ...]
    point: Point
    payload: Any
    #: Executor-side match time (subscriber clocks notify latency off it).
    matched_at: float
    executor: NodeAddress
