"""The message-level GeoGrid protocol.

The overlay model in :mod:`repro.core` / :mod:`repro.dualpeer` is the
authoritative, synchronous description of GeoGrid's structure; this
package executes the same logic the way the paper's prototype did -- as
asynchronous message handlers running over a simulated network with
latency, loss and failures:

* join requests routed greedily to the covering region, answered with a
  split grant or (dual peer) a secondary-slot grant;
* location queries routed hop by hop using each node's *local* neighbor
  table only;
* geo-tagged publish/subscribe with primary-to-secondary replication;
* heartbeats at two frequencies -- fast between the owners of one region,
  slower between neighbor primaries -- driving failure detection, and
  dual-peer failover when a primary dies.

Degraded-state behavior (documented in DESIGN.md): when the *last* owner
of a region fails, adjacent nodes become caretakers for routing purposes
and the hole is filled by the next join routed into it; when unreliable
failure detection double-assigns territory (split brain), witnesses
forward the deterministic winner's claim, the claimants confront each
other directly, and the loser abandons and rejoins.  The full repair
process is also modeled authoritatively in the overlay layer.
"""

from repro.protocol.messages import (
    HEARTBEAT,
    JOIN_GRANT,
    JOIN_REQUEST,
    NEIGHBOR_UPDATE,
    PUBLISH,
    QUERY,
    QUERY_RESULT,
    RELIABLE,
    RELIABLE_ACK,
    REPLICATE,
    ROUTE,
    ROUTE_DELIVERED,
    SYNC_STATE,
    NeighborInfo,
)
from repro.protocol.node import NodeConfig, OwnedRegion, ProtocolNode
from repro.protocol.cluster import ProtocolCluster
from repro.protocol.reliable import (
    DeadLetter,
    ReliableChannel,
    ReliableStats,
    RetryPolicy,
)

__all__ = [
    "ProtocolNode",
    "ProtocolCluster",
    "NodeConfig",
    "OwnedRegion",
    "NeighborInfo",
    "ReliableChannel",
    "ReliableStats",
    "RetryPolicy",
    "DeadLetter",
    "JOIN_REQUEST",
    "JOIN_GRANT",
    "NEIGHBOR_UPDATE",
    "ROUTE",
    "ROUTE_DELIVERED",
    "QUERY",
    "QUERY_RESULT",
    "PUBLISH",
    "REPLICATE",
    "RELIABLE",
    "RELIABLE_ACK",
    "HEARTBEAT",
    "SYNC_STATE",
]
