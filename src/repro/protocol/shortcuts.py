"""The adaptive routing shortcut cache (long-range entries per node).

GeoGrid's greedy routing only ever consults direct neighbors, paying the
full O(2*sqrt(N)) straight-line walk for every request.  Adaptive
overlays (GeoP2P-style) show that caching remote peers gleaned from
passing traffic collapses this: a node that has *seen* a far-away region
-- in heartbeat gossip, on a STORE_ACK return path, in a query result --
can jump straight toward it, while the strict-progress rule keeps greedy
termination intact.

This module holds the bounded, LRU-ordered cache each node maintains.
Entries are learned passively (zero new steady-state messages), evicted
eagerly whenever the node hears about a partition change overlapping the
cached rectangle, and repaired lazily through MISROUTE NACKs when a
stale entry is exercised anyway.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional

from repro.core.node import NodeAddress
from repro.geometry import Point, Rect
from repro.protocol import messages as m


class ShortcutCache:
    """A bounded LRU of learned ``(rect, primary, secondary)`` entries.

    Keys are region rectangles; values are :class:`~repro.protocol.
    messages.NeighborInfo` records naming the region's current owner(s).
    Capacity zero disables the cache entirely (used by forensic replays,
    where routing must be bit-for-bit reproducible against the journal).
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        self.capacity = capacity
        #: Forwarding decisions resolved through a cached entry.
        self.hits = 0
        #: Forwarding decisions that fell back to a plain neighbor hop.
        self.misses = 0
        #: Stale entries repaired through a MISROUTE NACK.
        self.repairs = 0
        self._entries: "OrderedDict[Rect, m.NeighborInfo]" = OrderedDict()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether the cache stores anything (capacity zero disables)."""
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, rect: Rect) -> bool:
        return rect in self._entries

    def get(self, rect: Rect) -> Optional[m.NeighborInfo]:
        """The cached info for exactly ``rect``, or ``None``."""
        return self._entries.get(rect)

    def entries(self) -> List[m.NeighborInfo]:
        """All cached entries, least recently used first."""
        return list(self._entries.values())

    def rects(self) -> Iterator[Rect]:
        """The cached rectangles, least recently used first."""
        return iter(list(self._entries))

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def learn(self, info: m.NeighborInfo) -> bool:
        """Insert or refresh an entry; returns whether anything changed.

        A new rectangle that overlaps cached rectangles replaces them
        (the overlapped entries describe a pre-split/pre-merge partition
        and are stale by construction).  Insertion past capacity evicts
        the least recently used entry.
        """
        if not self.enabled:
            return False
        existing = self._entries.get(info.rect)
        if existing is not None:
            self._entries[info.rect] = info
            self._entries.move_to_end(info.rect)
            return existing != info
        for rect in [r for r in self._entries if r.intersects(info.rect)]:
            del self._entries[rect]
        self._entries[info.rect] = info
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return True

    def touch(self, rect: Rect) -> None:
        """Mark ``rect`` as most recently used (after a successful hop)."""
        if rect in self._entries:
            self._entries.move_to_end(rect)

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate_rect(self, rect: Rect) -> bool:
        """Drop the entry for exactly ``rect``; returns whether one existed."""
        return self._entries.pop(rect, None) is not None

    def invalidate_overlapping(self, rect: Rect) -> int:
        """Drop every entry equal to or sharing area with ``rect``.

        Called for every partition change the node hears about: a split,
        merge, adaptation or failover announcement for ``rect`` makes any
        cached claim overlapping it suspect.  Returns the eviction count.
        """
        stale = [r for r in self._entries if r == rect or r.intersects(rect)]
        for r in stale:
            del self._entries[r]
        return len(stale)

    def invalidate_address(self, address: NodeAddress) -> int:
        """Drop entries routed through a now-suspected ``address``.

        Entries whose *primary* is the dead address are removed; entries
        that merely name it as secondary survive with the secondary
        cleared (the primary can still accept shortcut hops).  Returns
        the number of removed entries.
        """
        removed = 0
        for rect in list(self._entries):
            info = self._entries[rect]
            if info.primary == address:
                del self._entries[rect]
                removed += 1
            elif info.secondary == address:
                self._entries[rect] = info.with_secondary(None)
        return removed

    def clear(self) -> int:
        """Drop everything (ownership changed under us); returns count."""
        count = len(self._entries)
        self._entries.clear()
        return count

    # ------------------------------------------------------------------
    # Candidate selection
    # ------------------------------------------------------------------
    def best(
        self,
        target: Point,
        better_than: float,
        eps: float = 1e-12,
    ) -> Optional[m.NeighborInfo]:
        """The cached entry closest to ``target``, if strictly better.

        Returns the entry whose rectangle minimizes the distance to
        ``target``, provided that distance is strictly below
        ``better_than`` (the caller passes its best plain-neighbor
        distance, preserving the strict-progress termination argument).
        """
        best_info: Optional[m.NeighborInfo] = None
        best_dist = better_than - eps
        for rect, info in self._entries.items():
            distance = rect.distance_to_point(target)
            if distance < best_dist:
                best_info, best_dist = info, distance
        return best_info

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShortcutCache(capacity={self.capacity}, "
            f"entries={len(self._entries)}, hits={self.hits}, "
            f"misses={self.misses}, repairs={self.repairs})"
        )
