"""ASCII rendering of the region partition.

``render_region_map`` shades each character cell by a per-region value
(e.g. workload index), reproducing the look of the paper's Figures 2/3
("regions with darker shade" are the heavily loaded ones).
``render_owner_map`` letters regions by identity so split/merge behavior
is visible at a glance (Figure 1).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.geometry import Point
from repro.core.region import Region
from repro.core.space import Space

#: Shade ramp from empty to hottest.
SHADES = " .:-=+*#%@"

#: Letters used to identify regions in the owner map.
REGION_LETTERS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"


def _sample_point(space: Space, column: int, row: int, width: int, height: int) -> Point:
    bounds = space.bounds
    x = bounds.x + (column + 0.5) / width * bounds.width
    # Row 0 is the top of the printout = north edge of the map.
    y = bounds.y + (height - row - 0.5) / height * bounds.height
    return Point(x, y)


def render_region_map(
    space: Space,
    value_fn: Callable[[Region], float],
    width: int = 64,
    height: int = 32,
    max_value: Optional[float] = None,
) -> str:
    """Shade the partition by ``value_fn`` (darker = larger).

    ``max_value`` pins the top of the shade ramp; by default the maximum
    observed value maps to the darkest shade.
    """
    if width < 1 or height < 1:
        raise ValueError("width and height must be >= 1")
    values: Dict[Region, float] = {
        region: value_fn(region) for region in space.regions
    }
    top = max_value if max_value is not None else max(values.values(), default=0.0)
    lines = []
    hint = None
    for row in range(height):
        chars = []
        for column in range(width):
            point = _sample_point(space, column, row, width, height)
            region = space.locate(point, hint=hint)
            hint = region
            if top <= 0.0:
                chars.append(SHADES[0])
                continue
            level = values[region] / top
            index = min(len(SHADES) - 1, int(level * (len(SHADES) - 1) + 0.5))
            chars.append(SHADES[index])
        lines.append("".join(chars))
    return "\n".join(lines)


def render_boundary_map(
    space: Space,
    width: int = 64,
    height: int = 32,
    interior: str = " ",
) -> str:
    """Draw the partition's region boundaries (the Figure 1 look).

    A character cell renders as a boundary glyph when the region covering
    it differs from the region to its right (``|``), below (``-``), or
    both (``+``); interior cells render as ``interior``.
    """
    if width < 1 or height < 1:
        raise ValueError("width and height must be >= 1")
    # Resolve the region at every sample point once.
    owners = []
    hint = None
    for row in range(height):
        line = []
        for column in range(width):
            point = _sample_point(space, column, row, width, height)
            region = space.locate(point, hint=hint)
            hint = region
            line.append(region.region_id)
        owners.append(line)
    lines = []
    for row in range(height):
        chars = []
        for column in range(width):
            here = owners[row][column]
            right = owners[row][column + 1] if column + 1 < width else here
            below = owners[row + 1][column] if row + 1 < height else here
            if here != right and here != below:
                chars.append("+")
            elif here != right:
                chars.append("|")
            elif here != below:
                chars.append("-")
            else:
                chars.append(interior)
        lines.append("".join(chars))
    return "\n".join(lines)


def render_owner_map(
    space: Space,
    width: int = 64,
    height: int = 32,
) -> str:
    """Letter each region so the partition structure is visible."""
    if width < 1 or height < 1:
        raise ValueError("width and height must be >= 1")
    letter_of: Dict[int, str] = {}
    lines = []
    hint = None
    for row in range(height):
        chars = []
        for column in range(width):
            point = _sample_point(space, column, row, width, height)
            region = space.locate(point, hint=hint)
            hint = region
            if region.region_id not in letter_of:
                letter_of[region.region_id] = REGION_LETTERS[
                    len(letter_of) % len(REGION_LETTERS)
                ]
            chars.append(letter_of[region.region_id])
        lines.append("".join(chars))
    return "\n".join(lines)
