"""Plain-text visualization.

Figures 1--3 of the paper are pictures of the region partition (region
boundaries, and shading by load or by owner capacity).  These renderers
produce the terminal equivalent: an ASCII map of the partition shaded by
any per-region quantity, plus text histograms for distribution summaries.
"""

from repro.viz.ascii_map import (
    render_boundary_map,
    render_owner_map,
    render_region_map,
)
from repro.viz.dashboard import render_dashboard
from repro.viz.histogram import render_histogram
from repro.viz.sparkline import render_sparkline, series_sparkline

__all__ = [
    "render_region_map",
    "render_boundary_map",
    "render_owner_map",
    "render_dashboard",
    "render_histogram",
    "render_sparkline",
    "series_sparkline",
]
