"""The live cluster dashboard behind ``python -m repro top``.

Renders a sequence of :func:`repro.obs.telemetry.cluster_sample` dicts
as a terminal page: cluster-rate sparklines over the retained history,
SLO latency tiles (p50/p95/p99 per client-edge operation), a per-node
vitals table with gray flags called out, and a drill-down on the worst
offender.  Pure text in, pure text out -- the CLI owns screen clearing
and timing, so the renderer stays trivially testable and usable in
one-shot CI mode.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.viz.sparkline import render_sparkline

__all__ = ["render_dashboard"]

#: Node-table columns: (header, sample-row field, width, value spec).
_COLUMNS = (
    ("node", "address", 18, "<18"),
    ("tx/s", "sent_rate", 7, ">7.2f"),
    ("rx/s", "recv_rate", 7, ">7.2f"),
    ("rty/s", "retry_rate", 6, ">6.2f"),
    ("dead", "dead_letters", 5, ">5d"),
    ("store", "store_size", 5, ">5d"),
    ("debt", "anti_entropy_debt", 5, ">5d"),
    ("sc-hit", "shortcut_hit_rate", 6, ">6.0%"),
    ("hndl-ms", "handler_ms", 7, ">7.3f"),
    ("queue", "queue_depth", 5, ">5d"),
    ("bytes", "digest_bytes", 5, ">5d"),
    ("peers", "peers_tracked", 5, ">5d"),
)


def _series(samples: Sequence[Dict[str, Any]], kind: str) -> List[float]:
    return [sample.get("rates", {}).get(kind, 0.0) for sample in samples]


def _rate_lines(samples: Sequence[Dict[str, Any]], width: int) -> List[str]:
    span = samples[-width:]
    lines = []
    for kind, label in (
        ("sent", "sent/s"),
        ("recv", "recv/s"),
        ("retries", "rty/s"),
    ):
        values = _series(span, kind)
        spark = render_sparkline(values, minimum=0.0)
        lines.append(
            f"  {label:<8} {spark:<{width}} now={values[-1]:.2f}"
        )
    return lines


def _slo_lines(sample: Dict[str, Any]) -> List[str]:
    slo = sample.get("slo", {})
    if not slo:
        return ["  (no client-edge operations completed yet)"]
    lines = []
    for name in sorted(slo):
        row = slo[name]
        lines.append(
            f"  {name:<26} n={row['count']:<6d} "
            f"p50={row['p50']:<8.3f} p95={row['p95']:<8.3f} "
            f"p99={row['p99']:<8.3f} max={row['max']:.3f}"
        )
    return lines


def _node_lines(sample: Dict[str, Any]) -> List[str]:
    header = " ".join(
        format(title, f"<{width}" if spec.startswith('<') else f">{width}")
        for title, _, width, spec in _COLUMNS
    )
    lines = [header + "  flags"]
    flagged = set(sample.get("flagged", ()))
    for row in sample.get("nodes", ()):
        cells = []
        for _, field, _, spec in _COLUMNS:
            cells.append(format(row[field], spec))
        marker = ""
        if row["address"] in flagged:
            marker = "GRAY?"
        elif row["flags"]:
            marker = "sees " + ",".join(row["flags"])
        lines.append(" ".join(cells) + ("  " + marker if marker else ""))
    return lines


def _subscription_lines(sample: Dict[str, Any]) -> List[str]:
    """The continuous-query panel: registered/matched/notify health.

    Older samples (or hand-built fixtures) may predate the subscription
    plane, so every field read is a ``.get`` with a zero default and the
    panel degrades to its idle line rather than crashing.
    """
    nodes = list(sample.get("nodes", ()))
    registered = sum(row.get("sub_registered", 0) for row in nodes)
    matched = sum(row.get("sub_matched", 0) for row in nodes)
    notified = sum(row.get("sub_notified", 0) for row in nodes)
    dead = sum(row.get("sub_dead_letters", 0) for row in nodes)
    lines = [
        f"  registered={registered} matched={matched} "
        f"notified={notified} notify-dead-letters={dead}"
    ]
    if registered == 0 and matched == 0 and notified == 0 and dead == 0:
        lines.append("  (no continuous queries registered)")
        return lines
    for row in nodes:
        if not any(
            row.get(key, 0)
            for key in (
                "sub_registered",
                "sub_matched",
                "sub_notified",
                "sub_dead_letters",
            )
        ):
            continue
        lines.append(
            f"  {row.get('address', '?'):<18} "
            f"reg={row.get('sub_registered', 0):<4d} "
            f"match={row.get('sub_matched', 0):<5d} "
            f"ntfy={row.get('sub_notified', 0):<5d} "
            f"dead={row.get('sub_dead_letters', 0):d}"
        )
    return lines


def _overload_lines(sample: Dict[str, Any]) -> List[str]:
    """The overload panel: backpressure, shedding, and deflections.

    Like the subscription panel, every field read is a ``.get`` with a
    zero default so samples predating the overload plane (or from a
    cluster with it disabled) degrade to the idle line.
    """
    nodes = list(sample.get("nodes", ()))
    sheds = sum(row.get("sheds", 0) for row in nodes)
    nacked = sum(row.get("shed_received", 0) for row in nodes)
    deflections = sum(row.get("deflections", 0) for row in nodes)
    peak = max((row.get("pressure", 0.0) for row in nodes), default=0.0)
    lines = [
        f"  shed={sheds} shed-nacks-received={nacked} "
        f"deflected={deflections} peak-pressure={peak:.2f}"
    ]
    if sheds == 0 and nacked == 0 and deflections == 0 and peak == 0.0:
        lines.append("  (no overload observed)")
        return lines
    for row in nodes:
        if not (
            row.get("sheds", 0)
            or row.get("shed_received", 0)
            or row.get("deflections", 0)
            or row.get("pressure", 0.0)
        ):
            continue
        lines.append(
            f"  {row.get('address', '?'):<18} "
            f"pressure={row.get('pressure', 0.0):<5.2f} "
            f"shed={row.get('sheds', 0):<5d} "
            f"nacked={row.get('shed_received', 0):<5d} "
            f"deflect={row.get('deflections', 0):d}"
        )
    return lines


def _offender_lines(sample: Dict[str, Any]) -> List[str]:
    nodes = list(sample.get("nodes", ()))
    if not nodes:
        return []
    flagged = set(sample.get("flagged", ()))

    def badness(row: Dict[str, Any]) -> tuple:
        return (
            row["address"] in flagged,
            row["retry_rate"],
            row["dead_letters"],
            row["queue_depth"],
        )

    worst = max(nodes, key=badness)
    if not badness(worst)[0] and worst["retry_rate"] == 0.0 and (
        worst["dead_letters"] == 0
    ):
        return []
    verdict = (
        "flagged gray by the neighborhood"
        if worst["address"] in flagged
        else "worst retry pressure (not flagged)"
    )
    return [
        "",
        f"worst offender: {worst['address']} -- {verdict}",
        f"  retry_rate={worst['retry_rate']:.3f}/s "
        f"dead_letters={worst['dead_letters']} "
        f"queue_depth={worst['queue_depth']} "
        f"handler_ms={worst['handler_ms']:.3f} "
        f"digest v{worst['version']} ({worst['digest_bytes']} bytes)",
    ]


def render_dashboard(
    samples: Sequence[Dict[str, Any]], width: int = 48
) -> str:
    """Render the dashboard page for a history of cluster samples.

    ``samples`` is ordered oldest-first; the last one is "now".  ``width``
    caps the sparkline length (one column per retained sample).
    """
    if not samples:
        return "(no samples yet)"
    sample = samples[-1]
    nodes = sample.get("nodes", ())
    flagged = sample.get("flagged", ())
    title = (
        f"repro top -- t={sample.get('time', 0.0):.1f}s  "
        f"nodes={len(nodes)}  flagged={len(flagged)}"
    )
    if flagged:
        title += "  [" + ", ".join(flagged) + "]"
    sections = [
        title,
        "",
        "cluster rates (per sim-second)",
        *_rate_lines(samples, width),
        "",
        "client-edge SLO latency (sim-seconds)",
        *_slo_lines(sample),
        "",
        "continuous queries",
        *_subscription_lines(sample),
        "",
        "overload",
        *_overload_lines(sample),
        "",
        "node vitals",
        *_node_lines(sample),
        *_offender_lines(sample),
    ]
    return "\n".join(sections)
