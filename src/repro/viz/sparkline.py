"""One-line sparklines for convergence series.

Figures 7--10 are convergence curves; a sparkline gives their shape at a
glance inside text reports: ``|sparkline("std")| = "█▇▅▃▂▂▁▁▁"``.
"""

from __future__ import annotations

from typing import Sequence

#: Eight block heights plus a blank for zero.
BARS = " ▁▂▃▄▅▆▇█"


def render_sparkline(
    values: Sequence[float],
    minimum: float = None,
    maximum: float = None,
) -> str:
    """Render ``values`` as a unicode sparkline string.

    ``minimum``/``maximum`` pin the scale (default: the observed range).
    """
    data = [float(v) for v in values]
    if not data:
        return ""
    lo = min(data) if minimum is None else minimum
    hi = max(data) if maximum is None else maximum
    if hi <= lo:
        return BARS[1] * len(data)
    span = hi - lo
    chars = []
    for value in data:
        level = (value - lo) / span
        index = min(len(BARS) - 1, 1 + int(level * (len(BARS) - 2) + 0.5))
        chars.append(BARS[index])
    return "".join(chars)


def series_sparkline(collector, name: str, attribute: str = "std") -> str:
    """Sparkline of one collector series' attribute over x."""
    values = [value for _, value in collector.column(name, attribute)]
    return render_sparkline(values)
