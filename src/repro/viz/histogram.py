"""Plain-text histograms for distribution summaries."""

from __future__ import annotations

import math
from typing import Sequence


def render_histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    log_bins: bool = False,
    label_format: str = "{:>10.4g}",
) -> str:
    """Render a horizontal bar histogram of ``values``.

    ``log_bins`` uses logarithmically spaced bin edges, appropriate for
    the heavy-tailed capacity and workload-index distributions GeoGrid
    deals in.
    """
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    data = [float(v) for v in values]
    if not data:
        return "(empty)"
    lo, hi = min(data), max(data)
    if lo == hi:
        return f"{label_format.format(lo)}  all {len(data)} values"
    if log_bins:
        if lo <= 0:
            raise ValueError("log_bins requires strictly positive values")
        log_lo, log_hi = math.log10(lo), math.log10(hi)
        edges = [
            10 ** (log_lo + (log_hi - log_lo) * i / bins) for i in range(bins + 1)
        ]
    else:
        edges = [lo + (hi - lo) * i / bins for i in range(bins + 1)]
    counts = [0] * bins
    for value in data:
        for index in range(bins):
            if value <= edges[index + 1] or index == bins - 1:
                counts[index] += 1
                break
    peak = max(counts)
    lines = []
    for index in range(bins):
        bar = "#" * int(round(counts[index] / peak * width)) if peak else ""
        lines.append(
            f"{label_format.format(edges[index])} .. "
            f"{label_format.format(edges[index + 1])} | "
            f"{bar} {counts[index]}"
        )
    return "\n".join(lines)
