"""Rectangles: the region quadruple ``<x, y, width, height>`` of the paper.

Section 2.1 defines a region as a rectangle identified by its southwest
corner ``(x, y)`` and its extents ``(width, height)``, and pins down two
predicates this module implements exactly:

* *coverage*: a point ``o`` is covered by region ``r`` iff
  ``r.x < o.x <= r.x + r.width`` and ``r.y < o.y <= r.y + r.height``
  (open at the low edges, closed at the high edges, so the region tiling
  assigns every interior point to exactly one region);
* *neighborship*: two regions are neighbors iff their intersection is a
  line segment (a shared edge piece of positive length -- touching only at
  a corner does not count).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.geometry.point import Point

#: Absolute tolerance used when comparing region edge coordinates.  Regions
#: are produced by repeated exact halving of one root rectangle, so edges of
#: adjacent regions are bit-identical in practice; the tolerance only guards
#: against accumulated error in hand-constructed rectangles.
EDGE_TOLERANCE = 1e-9


class SplitAxis(enum.Enum):
    """Axis along which a region is cut in half.

    ``VERTICAL`` cuts with a vertical line (splitting the *width*, i.e. the
    longitude dimension); ``HORIZONTAL`` cuts with a horizontal line
    (splitting the *height*, the latitude dimension).
    """

    VERTICAL = "vertical"
    HORIZONTAL = "horizontal"


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle ``<x, y, width, height>``.

    Instances are immutable; all mutating-looking operations return new
    rectangles.
    """

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(
                f"rectangle extents must be positive, got "
                f"width={self.width!r} height={self.height!r}"
            )

    # ------------------------------------------------------------------
    # Derived coordinates
    # ------------------------------------------------------------------
    @property
    def x2(self) -> float:
        """The x coordinate of the east edge."""
        return self.x + self.width

    @property
    def y2(self) -> float:
        """The y coordinate of the north edge."""
        return self.y + self.height

    @property
    def area(self) -> float:
        """Rectangle area."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """The center point; routing targets the center of a query region."""
        return Point(self.x + self.width / 2.0, self.y + self.height / 2.0)

    @property
    def aspect_ratio(self) -> float:
        """Long side divided by short side (always >= 1)."""
        long_side = max(self.width, self.height)
        short_side = min(self.width, self.height)
        return long_side / short_side

    def corners(self) -> Tuple[Point, Point, Point, Point]:
        """The four corners (SW, SE, NE, NW)."""
        return (
            Point(self.x, self.y),
            Point(self.x2, self.y),
            Point(self.x2, self.y2),
            Point(self.x, self.y2),
        )

    # ------------------------------------------------------------------
    # Coverage and containment
    # ------------------------------------------------------------------
    def covers(
        self,
        point: Point,
        closed_low_x: bool = False,
        closed_low_y: bool = False,
    ) -> bool:
        """Return whether ``point`` is covered by this region.

        Implements the paper's predicate exactly: open at the low (south and
        west) edges and closed at the high (north and east) edges.  The
        ``closed_low_*`` flags let the partition manager close the low edge
        for regions sitting on the boundary of the whole coordinate space,
        so that the space's own southwest border is still owned by someone.
        """
        if closed_low_x:
            x_ok = self.x <= point.x <= self.x2
        else:
            x_ok = self.x < point.x <= self.x2
        if not x_ok:
            return False
        if closed_low_y:
            return self.y <= point.y <= self.y2
        return self.y < point.y <= self.y2

    def contains_rect(self, other: "Rect") -> bool:
        """Whether ``other`` lies entirely inside this rectangle."""
        return (
            self.x <= other.x
            and self.y <= other.y
            and other.x2 <= self.x2
            and other.y2 <= self.y2
        )

    # ------------------------------------------------------------------
    # Intersection
    # ------------------------------------------------------------------
    def intersects(self, other: "Rect") -> bool:
        """Whether the two rectangles share interior area (not just edges)."""
        return (
            self.x < other.x2
            and other.x < self.x2
            and self.y < other.y2
            and other.y < self.y2
        )

    def touches(self, other: "Rect") -> bool:
        """Whether the two *closed* rectangles have a non-empty intersection.

        Unlike :meth:`intersects` this also reports contact of measure
        zero: a shared edge piece or a single shared corner point.  Query
        fan-out needs this weaker predicate because point coverage is
        closed at the high edges -- a region can own points of a query
        rectangle that it merely touches at its northeast corner.
        """
        return (
            self.x <= other.x2 + EDGE_TOLERANCE
            and other.x <= self.x2 + EDGE_TOLERANCE
            and self.y <= other.y2 + EDGE_TOLERANCE
            and other.y <= self.y2 + EDGE_TOLERANCE
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping rectangle, or ``None`` when no area is shared."""
        if not self.intersects(other):
            return None
        x = max(self.x, other.x)
        y = max(self.y, other.y)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        return Rect(x, y, x2 - x, y2 - y)

    def overlap_length_x(self, other: "Rect") -> float:
        """Length of the overlap of the two x-extents (0 when disjoint)."""
        return max(0.0, min(self.x2, other.x2) - max(self.x, other.x))

    def overlap_length_y(self, other: "Rect") -> float:
        """Length of the overlap of the two y-extents (0 when disjoint)."""
        return max(0.0, min(self.y2, other.y2) - max(self.y, other.y))

    # ------------------------------------------------------------------
    # Neighborship (paper Section 2.1)
    # ------------------------------------------------------------------
    def is_neighbor_of(self, other: "Rect") -> bool:
        """Whether the intersection of the two regions is a line segment.

        True when the regions abut along a vertical or horizontal edge and
        the shared edge piece has positive length.  Overlapping rectangles
        and rectangles that only touch at a corner are *not* neighbors.
        """
        if self.intersects(other):
            return False
        touches_vertically = (
            abs(self.x2 - other.x) <= EDGE_TOLERANCE
            or abs(other.x2 - self.x) <= EDGE_TOLERANCE
        )
        if touches_vertically and self.overlap_length_y(other) > EDGE_TOLERANCE:
            return True
        touches_horizontally = (
            abs(self.y2 - other.y) <= EDGE_TOLERANCE
            or abs(other.y2 - self.y) <= EDGE_TOLERANCE
        )
        return touches_horizontally and self.overlap_length_x(other) > EDGE_TOLERANCE

    # ------------------------------------------------------------------
    # Distance
    # ------------------------------------------------------------------
    def distance_to_point(self, point: Point) -> float:
        """Euclidean distance from the rectangle to ``point``.

        Zero when the point lies inside (or on the border of) the
        rectangle.  Greedy routing forwards a request to the neighbor whose
        region is closest to the destination coordinate; using the *region*
        distance (rather than, say, distance between centers) guarantees
        that every hop makes strict progress on a rectangular tiling.
        """
        dx = max(self.x - point.x, 0.0, point.x - self.x2)
        dy = max(self.y - point.y, 0.0, point.y - self.y2)
        return (dx * dx + dy * dy) ** 0.5

    # ------------------------------------------------------------------
    # Split and merge
    # ------------------------------------------------------------------
    def longer_axis(self) -> SplitAxis:
        """The axis that halves the longer side.

        Ties prefer ``HORIZONTAL`` (cutting the latitude/height dimension),
        matching the paper's "latitude dimension first" split ordering.
        """
        if self.width > self.height:
            return SplitAxis.VERTICAL
        return SplitAxis.HORIZONTAL

    def split(self, axis: SplitAxis) -> Tuple["Rect", "Rect"]:
        """Cut the rectangle in half along ``axis``.

        Returns ``(low, high)``: the southern/western half first.
        """
        if axis is SplitAxis.VERTICAL:
            half = self.width / 2.0
            low = Rect(self.x, self.y, half, self.height)
            high = Rect(self.x + half, self.y, self.width - half, self.height)
        else:
            half = self.height / 2.0
            low = Rect(self.x, self.y, self.width, half)
            high = Rect(self.x, self.y + half, self.width, self.height - half)
        return low, high

    def can_merge_with(self, other: "Rect") -> bool:
        """Whether the union of the two rectangles is again a rectangle.

        Region merging (repair after departures, and load-balance mechanism
        (c)) is only legal for such pairs; merging anything else would break
        the rectangular tiling.
        """
        same_column = (
            abs(self.x - other.x) <= EDGE_TOLERANCE
            and abs(self.width - other.width) <= EDGE_TOLERANCE
        )
        if same_column and (
            abs(self.y2 - other.y) <= EDGE_TOLERANCE
            or abs(other.y2 - self.y) <= EDGE_TOLERANCE
        ):
            return True
        same_row = (
            abs(self.y - other.y) <= EDGE_TOLERANCE
            and abs(self.height - other.height) <= EDGE_TOLERANCE
        )
        return same_row and (
            abs(self.x2 - other.x) <= EDGE_TOLERANCE
            or abs(other.x2 - self.x) <= EDGE_TOLERANCE
        )

    def merge_with(self, other: "Rect") -> "Rect":
        """The union rectangle; raises ``ValueError`` for illegal pairs."""
        if not self.can_merge_with(other):
            raise ValueError(f"cannot merge {self} with {other}: union is not a rectangle")
        x = min(self.x, other.x)
        y = min(self.y, other.y)
        return Rect(x, y, max(self.x2, other.x2) - x, max(self.y2, other.y2) - y)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def sample_interior_point(self, u: float, v: float) -> Point:
        """Map unit-square coordinates ``(u, v)`` to an interior point.

        ``u`` and ``v`` must lie in ``[0, 1)``; the result is strictly
        inside the open west/south edges so that it is covered by this
        region under the paper's half-open rule.
        """
        if not (0.0 <= u < 1.0 and 0.0 <= v < 1.0):
            raise ValueError(f"(u, v) must lie in [0, 1), got ({u!r}, {v!r})")
        return Point(self.x + self.width * (1.0 - u) , self.y + self.height * (1.0 - v))

    def as_tuple(self) -> tuple:
        """Return ``(x, y, width, height)``."""
        return (self.x, self.y, self.width, self.height)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.x:g}, {self.y:g}, {self.width:g}, {self.height:g}>"
