"""Planar geometry substrate for GeoGrid.

This package contains the geometric primitives the overlay is built on:

* :class:`~repro.geometry.point.Point` -- a point in the two-dimensional
  geographical coordinate space (the paper maps it 1:1 to longitude /
  latitude over the service area).
* :class:`~repro.geometry.rect.Rect` -- the rectangular region quadruple
  ``<x, y, width, height>`` of Section 2.1, including the paper's exact
  half-open coverage predicate, the neighbor test ("intersection is a line
  segment"), splitting and merge legality.
* :class:`~repro.geometry.circle.Circle` -- circular hot-spot areas.
* :class:`~repro.geometry.grid.CellGrid` -- the discretized workload field
  (Section 3.1 assigns hot-spot load per *cell*); it supports O(1) region
  load queries through two-dimensional prefix sums.

Nothing in this package knows about nodes, regions' owners, or the overlay;
it is a dependency-free substrate.
"""

from repro.geometry.point import Point
from repro.geometry.rect import Rect, SplitAxis
from repro.geometry.circle import Circle
from repro.geometry.grid import CellGrid

__all__ = ["Point", "Rect", "SplitAxis", "Circle", "CellGrid"]
