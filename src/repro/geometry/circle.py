"""Circles: the shape of hot-spot query areas (paper Section 3.1).

Each hot spot is a circular area; the cell at its center carries the highest
normalized workload (1.0) and cells on its border carry workload 0, falling
off linearly as ``1 - d / r``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class Circle:
    """A circle given by its center and radius."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError(f"radius must be positive, got {self.radius!r}")

    @property
    def area(self) -> float:
        """Circle area."""
        import math

        return math.pi * self.radius * self.radius

    def covers(self, point: Point) -> bool:
        """Whether ``point`` lies inside the circle (border exclusive).

        The border is excluded because border cells carry workload 0 in the
        hot-spot model, so covering them would be a no-op.
        """
        return self.center.distance_to(point) < self.radius

    def workload_at(self, point: Point) -> float:
        """The hot-spot workload contribution at ``point``: ``1 - d/r``.

        Zero outside the circle.
        """
        d = self.center.distance_to(point)
        if d >= self.radius:
            return 0.0
        return 1.0 - d / self.radius

    def intersects_rect(self, rect: Rect) -> bool:
        """Whether the circle and the rectangle share any area."""
        return rect.distance_to_point(self.center) < self.radius

    def bounding_rect(self) -> Rect:
        """The smallest axis-aligned rectangle containing the circle.

        The paper notes a circular query region of radius ``gamma`` can be
        represented as the spatial rectangle ``(x, y, 2*gamma, 2*gamma)``.
        """
        return Rect(
            self.center.x - self.radius,
            self.center.y - self.radius,
            2.0 * self.radius,
            2.0 * self.radius,
        )

    def moved_to(self, center: Point) -> "Circle":
        """A copy of the circle centered at ``center``."""
        return Circle(center, self.radius)

    def scaled(self, factor: float) -> "Circle":
        """A copy with the radius multiplied by ``factor``."""
        return Circle(self.center, self.radius * factor)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Circle(center={self.center}, r={self.radius:g})"
