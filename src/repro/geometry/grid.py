"""The discretized workload field.

The paper's evaluation assigns hot-spot workload per *cell*: the simulated
64 mi x 64 mi plane is divided into small square cells, the cell at the
center of a hot spot has normalized workload 1 and cells on the border have
workload 0 (Section 3.1).  A region's query workload is the total workload
of the cells it covers.

:class:`CellGrid` stores one float per cell and answers "total workload
inside rectangle R" in O(1) through a two-dimensional prefix-sum table,
which is what makes the 16 000-node experiments tractable in Python.
"""

from __future__ import annotations

import math
from typing import Iterator, Tuple

import numpy as np

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect

#: Nudge used when mapping real coordinates to cell indices; region edges
#: and cell boundaries are dyadic rationals (exact in binary floating
#: point), the nudge only protects hand-fed off-grid rectangles.
_INDEX_NUDGE = 1e-9


class CellGrid:
    """A uniform grid of square cells over a bounding rectangle.

    Parameters
    ----------
    bounds:
        The rectangle being discretized (the whole GeoGrid plane).
    cell_size:
        Side length of a cell, in the same unit as ``bounds`` (miles in the
        paper's setup).  The bounds' extents need not be exact multiples of
        the cell size; the last row/column of cells simply overhangs.
    """

    def __init__(self, bounds: Rect, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size!r}")
        self.bounds = bounds
        self.cell_size = float(cell_size)
        self.nx = max(1, int(math.ceil(bounds.width / cell_size - _INDEX_NUDGE)))
        self.ny = max(1, int(math.ceil(bounds.height / cell_size - _INDEX_NUDGE)))
        self._loads = np.zeros((self.nx, self.ny), dtype=np.float64)
        self._prefix: "np.ndarray | None" = None

    # ------------------------------------------------------------------
    # Cell coordinates
    # ------------------------------------------------------------------
    @property
    def cell_count(self) -> int:
        """Total number of cells."""
        return self.nx * self.ny

    def cell_center(self, ix: int, iy: int) -> Point:
        """The center point of cell ``(ix, iy)``."""
        if not (0 <= ix < self.nx and 0 <= iy < self.ny):
            raise IndexError(f"cell index ({ix}, {iy}) out of range")
        return Point(
            self.bounds.x + (ix + 0.5) * self.cell_size,
            self.bounds.y + (iy + 0.5) * self.cell_size,
        )

    def cell_index_of(self, point: Point) -> Tuple[int, int]:
        """The index of the cell containing ``point`` (clamped to range)."""
        ix = int((point.x - self.bounds.x) / self.cell_size)
        iy = int((point.y - self.bounds.y) / self.cell_size)
        return (min(max(ix, 0), self.nx - 1), min(max(iy, 0), self.ny - 1))

    def iter_cells(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all cell indices."""
        for ix in range(self.nx):
            for iy in range(self.ny):
                yield (ix, iy)

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------
    @property
    def loads(self) -> np.ndarray:
        """The raw per-cell load array (shape ``(nx, ny)``)."""
        return self._loads

    @property
    def total_load(self) -> float:
        """Sum of all cell loads."""
        return float(self._loads.sum())

    def clear(self) -> None:
        """Reset all cell loads to zero."""
        self._loads.fill(0.0)
        self._prefix = None

    def set_load(self, ix: int, iy: int, value: float) -> None:
        """Set the load of a single cell."""
        self._loads[ix, iy] = value
        self._prefix = None

    def add_load(self, ix: int, iy: int, value: float) -> None:
        """Add ``value`` to the load of a single cell."""
        self._loads[ix, iy] += value
        self._prefix = None

    def add_hotspot(self, hotspot: Circle) -> None:
        """Deposit a hot spot's workload onto the grid.

        Every cell whose center falls inside the circle receives
        ``1 - d/r`` where ``d`` is the distance of the cell center to the
        hot-spot center (paper Section 3.1).  Cells outside the grid bounds
        are ignored: a hot spot that migrates partially off the map simply
        loses the off-map part of its load, as in the paper's simulation.
        """
        lo_x = hotspot.center.x - hotspot.radius
        hi_x = hotspot.center.x + hotspot.radius
        lo_y = hotspot.center.y - hotspot.radius
        hi_y = hotspot.center.y + hotspot.radius
        ix0 = max(0, int((lo_x - self.bounds.x) / self.cell_size))
        ix1 = min(self.nx - 1, int((hi_x - self.bounds.x) / self.cell_size))
        iy0 = max(0, int((lo_y - self.bounds.y) / self.cell_size))
        iy1 = min(self.ny - 1, int((hi_y - self.bounds.y) / self.cell_size))
        if ix0 > ix1 or iy0 > iy1:
            return
        xs = self.bounds.x + (np.arange(ix0, ix1 + 1) + 0.5) * self.cell_size
        ys = self.bounds.y + (np.arange(iy0, iy1 + 1) + 0.5) * self.cell_size
        dx = xs[:, None] - hotspot.center.x
        dy = ys[None, :] - hotspot.center.y
        d = np.sqrt(dx * dx + dy * dy)
        contribution = np.clip(1.0 - d / hotspot.radius, 0.0, None)
        self._loads[ix0 : ix1 + 1, iy0 : iy1 + 1] += contribution
        self._prefix = None

    # ------------------------------------------------------------------
    # Region queries
    # ------------------------------------------------------------------
    def _ensure_prefix(self) -> np.ndarray:
        if self._prefix is None:
            prefix = np.zeros((self.nx + 1, self.ny + 1), dtype=np.float64)
            np.cumsum(self._loads, axis=0, out=prefix[1:, 1:])
            np.cumsum(prefix[1:, 1:], axis=1, out=prefix[1:, 1:])
            self._prefix = prefix
        return self._prefix

    def covered_index_ranges(self, rect: Rect) -> Tuple[int, int, int, int]:
        """Index ranges ``(ix0, ix1, iy0, iy1)`` of cells covered by ``rect``.

        A cell counts as covered when its *center* is covered by the
        rectangle under the paper's half-open predicate
        (``rect.x < cx <= rect.x2``).  Returned ranges are inclusive and may
        be empty (``ix0 > ix1``) for slivers thinner than a cell.
        """
        v = (rect.x - self.bounds.x) / self.cell_size - 0.5
        ix0 = max(0, int(math.floor(v + _INDEX_NUDGE)) + 1)
        w = (rect.x2 - self.bounds.x) / self.cell_size - 0.5
        ix1 = min(self.nx - 1, int(math.floor(w + _INDEX_NUDGE)))
        v = (rect.y - self.bounds.y) / self.cell_size - 0.5
        iy0 = max(0, int(math.floor(v + _INDEX_NUDGE)) + 1)
        w = (rect.y2 - self.bounds.y) / self.cell_size - 0.5
        iy1 = min(self.ny - 1, int(math.floor(w + _INDEX_NUDGE)))
        return (ix0, ix1, iy0, iy1)

    def load_in_rect(self, rect: Rect) -> float:
        """Total workload of the cells covered by ``rect`` (O(1))."""
        ix0, ix1, iy0, iy1 = self.covered_index_ranges(rect)
        if ix0 > ix1 or iy0 > iy1:
            return 0.0
        prefix = self._ensure_prefix()
        return float(
            prefix[ix1 + 1, iy1 + 1]
            - prefix[ix0, iy1 + 1]
            - prefix[ix1 + 1, iy0]
            + prefix[ix0, iy0]
        )

    def load_in_rect_slow(self, rect: Rect) -> float:
        """Reference implementation of :meth:`load_in_rect`.

        Sums cell loads one by one using the coverage predicate directly.
        Exists so tests can cross-check the prefix-sum fast path.
        """
        total = 0.0
        for ix in range(self.nx):
            for iy in range(self.ny):
                if rect.covers(self.cell_center(ix, iy)):
                    total += float(self._loads[ix, iy])
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CellGrid(bounds={self.bounds}, cell_size={self.cell_size:g}, "
            f"nx={self.nx}, ny={self.ny})"
        )
