"""Points in the GeoGrid coordinate space."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Point:
    """A point ``(x, y)`` in the two-dimensional geographical space.

    The paper identifies every node and every routing destination by such a
    coordinate (longitude / latitude over the service area, e.g. a
    64 mi x 64 mi metropolitan region).
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance between this point and ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_distance_to(self, other: "Point") -> float:
        """L1 distance; used by a few routing heuristics and tests."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def moved_toward(self, heading: float, step: float) -> "Point":
        """Return the point reached by moving ``step`` along ``heading``.

        ``heading`` is an angle in radians (0 = +x axis).  Used by the
        hot-spot migration model: at every epoch a hot spot migrates along a
        randomly chosen direction at a random step size.
        """
        return Point(
            self.x + step * math.cos(heading),
            self.y + step * math.sin(heading),
        )

    def clamped(self, x_min: float, y_min: float, x_max: float, y_max: float) -> "Point":
        """Return the nearest point inside the axis-aligned box."""
        return Point(
            min(max(self.x, x_min), x_max),
            min(max(self.y, y_min), y_max),
        )

    def as_tuple(self) -> tuple:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x:g}, {self.y:g})"
