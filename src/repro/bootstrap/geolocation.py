"""Geolocation services for the join bootstrap (Section 2.1, step 1).

"Node p obtains its geographical coordinate by using services like GeoLIM
[5] of GPS (Global Positioning System)."  Both flavors are modeled:

* :class:`GpsLocator` -- high-accuracy positioning with small Gaussian
  noise (consumer GPS: a few meters, i.e. ~0.002 mi);
* :class:`ConstraintBasedLocator` -- coarse network-measurement-based
  geolocation in the spirit of GeoLIM/CBG: the estimate falls in a
  city-block-scale cell around the true position.

GeoGrid only needs the coordinate to map a node to a region, so position
error merely makes a node join a *nearby* region -- the locators let
tests quantify how much error the geographic mapping tolerates.
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.geometry import Point, Rect


class GeoLocator(Protocol):
    """Estimates a node's coordinate from its true physical position."""

    def locate(self, true_position: Point, rng: random.Random) -> Point:
        """Return the estimated coordinate (inside the service area)."""
        ...


class GpsLocator:
    """GPS positioning: unbiased Gaussian error of a few meters.

    ``sigma_miles`` defaults to 0.003 mi (~5 m), typical consumer GPS.
    """

    def __init__(self, bounds: Rect, sigma_miles: float = 0.003) -> None:
        if sigma_miles < 0:
            raise ValueError(f"sigma_miles must be >= 0, got {sigma_miles!r}")
        self.bounds = bounds
        self.sigma_miles = sigma_miles

    def locate(self, true_position: Point, rng: random.Random) -> Point:
        """The true position plus isotropic Gaussian noise, clamped."""
        if self.sigma_miles == 0.0:
            return true_position
        estimate = Point(
            rng.gauss(true_position.x, self.sigma_miles),
            rng.gauss(true_position.y, self.sigma_miles),
        )
        return self._clamp(estimate)

    def _clamp(self, point: Point) -> Point:
        inset = min(self.bounds.width, self.bounds.height) * 1e-9
        return point.clamped(
            self.bounds.x + inset,
            self.bounds.y + inset,
            self.bounds.x2,
            self.bounds.y2,
        )


class ConstraintBasedLocator:
    """Coarse constraint-based geolocation (GeoLIM/CBG style).

    Network-delay triangulation localizes a host to a region of a few
    miles, not a few meters; this model snaps the true position to the
    center of a ``cell_miles``-sized cell and adds uniform jitter within
    half a cell, bounding the error by ``cell_miles / sqrt(2)``.
    """

    def __init__(self, bounds: Rect, cell_miles: float = 2.0) -> None:
        if cell_miles <= 0:
            raise ValueError(f"cell_miles must be positive, got {cell_miles!r}")
        self.bounds = bounds
        self.cell_miles = cell_miles

    def locate(self, true_position: Point, rng: random.Random) -> Point:
        """Cell-center snap plus uniform in-cell jitter, clamped."""
        half = self.cell_miles / 2.0
        snapped_x = (
            self.bounds.x
            + (int((true_position.x - self.bounds.x) / self.cell_miles) + 0.5)
            * self.cell_miles
        )
        snapped_y = (
            self.bounds.y
            + (int((true_position.y - self.bounds.y) / self.cell_miles) + 0.5)
            * self.cell_miles
        )
        estimate = Point(
            snapped_x + rng.uniform(-half, half),
            snapped_y + rng.uniform(-half, half),
        )
        inset = min(self.bounds.width, self.bounds.height) * 1e-9
        return estimate.clamped(
            self.bounds.x + inset,
            self.bounds.y + inset,
            self.bounds.x2,
            self.bounds.y2,
        )
