"""Bootstrapping (Section 2.1, step 2).

A joining node "obtains a list of existing nodes in GeoGrid from a
bootstrapping server or a local host cache carried from its last session
of activity", then contacts an entry node selected randomly from that
list.  Both sources are implemented here.
"""

from repro.bootstrap.server import BootstrapServer
from repro.bootstrap.hostcache import HostCache
from repro.bootstrap.geolocation import (
    ConstraintBasedLocator,
    GeoLocator,
    GpsLocator,
)

__all__ = [
    "BootstrapServer",
    "HostCache",
    "GeoLocator",
    "GpsLocator",
    "ConstraintBasedLocator",
]
