"""The bootstrapping server: a registry of currently known members."""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.errors import BootstrapError
from repro.core.node import NodeAddress


class BootstrapServer:
    """A well-known registry nodes report to and fetch entry lists from.

    The server is *soft state*: it may lag behind reality (departed nodes
    linger until reported), which is why joiners receive a whole list of
    candidates rather than a single entry point.
    """

    def __init__(self, max_entries_per_request: int = 16) -> None:
        if max_entries_per_request < 1:
            raise BootstrapError(
                f"max_entries_per_request must be >= 1, got "
                f"{max_entries_per_request}"
            )
        self.max_entries_per_request = max_entries_per_request
        self._known: Dict[NodeAddress, bool] = {}
        self.requests_served = 0

    def register(self, address: NodeAddress) -> None:
        """A node reports itself alive."""
        self._known[address] = True

    def deregister(self, address: NodeAddress) -> None:
        """A node (or someone on its behalf) reports it gone."""
        self._known.pop(address, None)

    def known_count(self) -> int:
        """Number of addresses currently on record."""
        return len(self._known)

    def sample_entries(
        self,
        rng: random.Random,
        count: Optional[int] = None,
        exclude: Optional[NodeAddress] = None,
    ) -> List[NodeAddress]:
        """A random entry list for a joining node.

        Raises :class:`BootstrapError` when the registry is empty -- the
        joiner is then the network's first node and should create the root
        region instead.
        """
        candidates = [
            address for address in self._known if address != exclude
        ]
        if not candidates:
            raise BootstrapError("the bootstrap server knows no members yet")
        self.requests_served += 1
        want = count if count is not None else self.max_entries_per_request
        want = max(1, min(want, len(candidates)))
        return rng.sample(candidates, want)
