"""The local host cache: entry candidates from a node's last session."""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Iterable, List, Optional

from repro.core.node import NodeAddress


class HostCache:
    """A bounded, recency-ordered cache of previously seen member addresses.

    A returning node can bootstrap from this cache without contacting the
    bootstrap server at all; stale entries are tolerated (the join simply
    tries the next candidate).
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[NodeAddress, None]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, address: NodeAddress) -> bool:
        return address in self._entries

    def remember(self, address: NodeAddress) -> None:
        """Record ``address`` as most-recently seen, evicting the oldest."""
        if address in self._entries:
            self._entries.move_to_end(address)
            return
        self._entries[address] = None
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def remember_all(self, addresses: Iterable[NodeAddress]) -> None:
        """Record a batch of addresses (e.g. a received neighbor list)."""
        for address in addresses:
            self.remember(address)

    def forget(self, address: NodeAddress) -> None:
        """Drop an address observed to be dead."""
        self._entries.pop(address, None)

    def entries(self) -> List[NodeAddress]:
        """All cached addresses, most recent last."""
        return list(self._entries)

    def pick_entry(self, rng: random.Random) -> Optional[NodeAddress]:
        """A random cached address, or ``None`` when the cache is empty."""
        if not self._entries:
            return None
        return rng.choice(list(self._entries))
