"""The local host cache: entry candidates from a node's last session."""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional

from repro.core.node import NodeAddress


class HostCache:
    """A bounded, recency-ordered cache of previously seen member addresses.

    A returning node can bootstrap from this cache without contacting the
    bootstrap server at all; stale entries are tolerated (the join simply
    tries the next candidate).
    """

    def __init__(self, capacity: int = 64, max_strikes: int = 2) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_strikes < 1:
            raise ValueError(f"max_strikes must be >= 1, got {max_strikes}")
        self.capacity = capacity
        #: Failed contact attempts tolerated before an entry is evicted.
        self.max_strikes = max_strikes
        self._entries: "OrderedDict[NodeAddress, None]" = OrderedDict()
        self._strikes: Dict[NodeAddress, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, address: NodeAddress) -> bool:
        return address in self._entries

    def remember(self, address: NodeAddress) -> None:
        """Record ``address`` as most-recently seen, evicting the oldest.

        Seeing the address alive again also clears any strikes recorded
        against it by :meth:`penalize`.
        """
        self._strikes.pop(address, None)
        if address in self._entries:
            self._entries.move_to_end(address)
            return
        self._entries[address] = None
        while len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self._strikes.pop(evicted, None)

    def remember_all(self, addresses: Iterable[NodeAddress]) -> None:
        """Record a batch of addresses (e.g. a received neighbor list)."""
        for address in addresses:
            self.remember(address)

    def forget(self, address: NodeAddress) -> None:
        """Drop an address observed to be dead."""
        self._entries.pop(address, None)
        self._strikes.pop(address, None)

    def penalize(self, address: NodeAddress) -> bool:
        """Record a failed contact attempt against ``address``.

        A cached address that repeatedly fails to answer (e.g. the node a
        rejoining member last saw has since crashed) is evicted after
        ``max_strikes`` failures, so :meth:`pick_entry` stops re-offering
        it forever.  Returns ``True`` when this call evicted the entry.
        Unknown addresses are ignored.
        """
        if address not in self._entries:
            return False
        strikes = self._strikes.get(address, 0) + 1
        if strikes >= self.max_strikes:
            self.forget(address)
            return True
        self._strikes[address] = strikes
        return False

    def strikes(self, address: NodeAddress) -> int:
        """Failed contact attempts currently recorded against ``address``."""
        return self._strikes.get(address, 0)

    def entries(self) -> List[NodeAddress]:
        """All cached addresses, most recent last."""
        return list(self._entries)

    def pick_entry(self, rng: random.Random) -> Optional[NodeAddress]:
        """A random cached address, or ``None`` when the cache is empty."""
        if not self._entries:
            return None
        return rng.choice(list(self._entries))
