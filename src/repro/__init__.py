"""GeoGrid: a scalable geographical location service overlay network.

A faithful, from-scratch Python reproduction of

    Jianjun Zhang, Gong Zhang, Ling Liu.
    "GeoGrid: A Scalable Location Service Network." ICDCS 2007.

The public API re-exports the pieces a downstream user needs most:

* the geometric substrate (:mod:`repro.geometry`),
* the basic overlay (:class:`repro.core.BasicGeoGrid`),
* the dual-peer overlay (:class:`repro.dualpeer.DualPeerGeoGrid`),
* the load-balance adaptation engine
  (:class:`repro.loadbalance.AdaptationEngine`),
* the workload models of the paper's evaluation (:mod:`repro.workload`),
* the experiment drivers that regenerate every figure
  (:mod:`repro.experiments`).

See ``README.md`` for a quickstart and ``DESIGN.md`` for the system
inventory and the per-figure experiment index.
"""

from repro.errors import (
    AdaptationError,
    BootstrapError,
    ConfigurationError,
    GeoGridError,
    GeometryError,
    MembershipError,
    OwnershipError,
    PartitionError,
    RoutingError,
    SimulationError,
    TransportError,
)
from repro.geometry import CellGrid, Circle, Point, Rect, SplitAxis
from repro.core import (
    BasicGeoGrid,
    LocationQuery,
    Node,
    NodeAddress,
    Region,
    RouteResult,
    Space,
    Subscription,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "GeoGridError",
    "GeometryError",
    "PartitionError",
    "RoutingError",
    "MembershipError",
    "OwnershipError",
    "AdaptationError",
    "BootstrapError",
    "TransportError",
    "SimulationError",
    "ConfigurationError",
    # geometry
    "Point",
    "Rect",
    "SplitAxis",
    "Circle",
    "CellGrid",
    # core
    "Node",
    "NodeAddress",
    "Region",
    "Space",
    "BasicGeoGrid",
    "LocationQuery",
    "Subscription",
    "RouteResult",
]
