"""Experiment configuration shared by all figure drivers."""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import ConfigurationError
from repro.geometry import Rect
from repro.loadbalance.config import AdaptationConfig

#: The paper's service area: 64 miles x 64 miles.
PAPER_BOUNDS = Rect(0.0, 0.0, 64.0, 64.0)

#: The paper's node populations for the scaling experiments (Figures 5/6).
PAPER_POPULATIONS: Tuple[int, ...] = (1_000, 2_000, 4_000, 8_000, 16_000)

#: Population of the convergence experiments (Figures 7--10).
PAPER_CONVERGENCE_POPULATION = 2_000


class SystemVariant(enum.Enum):
    """The three systems the paper compares (Section 3.1)."""

    BASIC = "basic"
    DUAL_PEER = "dual-peer"
    DUAL_PEER_ADAPTATION = "dual-peer+adaptation"

    @property
    def uses_dual_peer(self) -> bool:
        """Whether the variant admits joins through dual-peer probing."""
        return self is not SystemVariant.BASIC

    @property
    def uses_adaptation(self) -> bool:
        """Whether the variant runs the load-balance adaptation engine."""
        return self is SystemVariant.DUAL_PEER_ADAPTATION


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of one experiment run.

    Defaults reproduce the paper's setup; ``trials`` defaults from the
    ``GEOGRID_TRIALS`` environment variable (the paper averaged 100
    simulated networks per setting, which is impractical per benchmark run
    in Python -- EXPERIMENTS.md records the counts actually used).
    """

    bounds: Rect = PAPER_BOUNDS
    cell_size: float = 0.5
    hotspot_count: int = 10
    hotspot_radius_range: Tuple[float, float] = (0.1, 10.0)
    seed: int = 20070625  # ICDCS 2007 started on June 25, 2007.
    trials: int = field(
        default_factory=lambda: int(os.environ.get("GEOGRID_TRIALS", "3"))
    )
    adaptation: AdaptationConfig = field(default_factory=AdaptationConfig)
    #: Upper bound of adaptation rounds when bringing a network to its
    #: adapted steady state (scaling experiments).
    max_adaptation_rounds: int = 20

    def __post_init__(self) -> None:
        if self.cell_size <= 0:
            raise ConfigurationError(
                f"cell_size must be positive, got {self.cell_size!r}"
            )
        if self.hotspot_count < 0:
            raise ConfigurationError(
                f"hotspot_count must be >= 0, got {self.hotspot_count!r}"
            )
        if self.trials < 1:
            raise ConfigurationError(
                f"trials must be >= 1, got {self.trials!r}"
            )
        if self.max_adaptation_rounds < 1:
            raise ConfigurationError(
                f"max_adaptation_rounds must be >= 1, got "
                f"{self.max_adaptation_rounds!r}"
            )
