"""Routing-workload balance across the three systems.

Backs the paper's claim that GeoGrid's mechanisms "balance both the
location query workload and the routing workload": the same hot-spot-
driven query stream is replayed over basic, dual-peer, and adapted
networks built on identical populations, and the per-node *routing* index
(messages forwarded / capacity) is summarized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.loadbalance.routing_load import RoutingLoadTracker
from repro.metrics.stats import StatSummary
from repro.sim.rng import RngStreams
from repro.workload.queries import QueryGenerator
from repro.experiments.build import build_field, build_network, draw_population
from repro.experiments.config import ExperimentConfig, SystemVariant
from repro.experiments.fig_scaling import ALL_VARIANTS


@dataclass(frozen=True)
class RoutingLoadCell:
    """One variant's routing-load summary."""

    variant: SystemVariant
    population: int
    queries: int
    index_summary: StatSummary
    mean_hops: float


def run_routing_load(
    config: ExperimentConfig,
    population: int = 1_000,
    queries: int = 1_000,
) -> Dict[SystemVariant, RoutingLoadCell]:
    """Measure routing-load balance for all three systems."""
    results: Dict[SystemVariant, RoutingLoadCell] = {}
    for variant in ALL_VARIANTS:
        streams = RngStreams(config.seed).fork(900_000)
        field = build_field(config, streams)
        nodes = draw_population(population, config, streams)
        network = build_network(
            variant, population, config, streams, field=field, nodes=nodes
        )
        if network.engine is not None:
            network.engine.run_until_stable(
                max_rounds=config.max_adaptation_rounds
            )
        generator = QueryGenerator(field)
        tracker = RoutingLoadTracker(network.overlay)
        report = tracker.measure(
            generator, streams.stream("query-stream"), queries=queries
        )
        results[variant] = RoutingLoadCell(
            variant=variant,
            population=population,
            queries=queries,
            index_summary=report.index_summary,
            mean_hops=report.mean_hops,
        )
    return results


def render_report(results: Dict[SystemVariant, RoutingLoadCell]) -> str:
    """Routing-load comparison rows."""
    lines = [
        "Routing workload balance (forwards per unit capacity)",
        "",
        f"{'variant':<22} {'max':>10} {'mean':>10} {'std':>10} "
        f"{'mean hops':>10}",
    ]
    for variant, cell in results.items():
        s = cell.index_summary
        lines.append(
            f"{variant.value:<22} {s.maximum:>10.3f} {s.mean:>10.3f} "
            f"{s.std:>10.3f} {cell.mean_hops:>10.2f}"
        )
    return "\n".join(lines)
