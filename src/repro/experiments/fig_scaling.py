"""Figures 5 and 6: workload-index std-dev and mean versus population.

The paper simulates populations of 1 000 to 16 000 proxies (100 random
networks each) and reports, for three systems -- basic GeoGrid, GeoGrid +
dual peer, GeoGrid + dual peer + adaptation -- the standard deviation
(Figure 5) and mean (Figure 6) of the workload index over all nodes.

Headline result: "The GeoGrid system with both features can constantly
beat the basic GeoGrid system by one order of magnitude in both metrics."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.metrics.stats import StatSummary, confidence_interval95, summarize
from repro.sim.rng import RngStreams
from repro.experiments.build import build_field, build_network, draw_population
from repro.experiments.config import (
    ExperimentConfig,
    PAPER_POPULATIONS,
    SystemVariant,
)

#: All three systems, in the order the paper's legends list them.
ALL_VARIANTS: Tuple[SystemVariant, ...] = (
    SystemVariant.BASIC,
    SystemVariant.DUAL_PEER,
    SystemVariant.DUAL_PEER_ADAPTATION,
)


@dataclass(frozen=True)
class ScalingCell:
    """One (population, variant) cell averaged over trials."""

    population: int
    variant: SystemVariant
    trials: int
    #: Trial-averaged std-dev of the workload index (Figure 5's y-value).
    std: float
    #: Trial-averaged mean of the workload index (Figure 6's y-value).
    mean: float
    #: Trial-averaged maximum index (reported in the text).
    maximum: float
    #: 95% confidence half-widths of the trial averages (0 for 1 trial).
    std_ci: float = 0.0
    mean_ci: float = 0.0


@dataclass
class ScalingResult:
    """The full Figure 5/6 data set."""

    populations: Sequence[int]
    cells: Dict[Tuple[int, SystemVariant], ScalingCell]

    def row(self, population: int) -> List[ScalingCell]:
        """All variant cells for one population."""
        return [
            self.cells[(population, variant)] for variant in ALL_VARIANTS
        ]

    def improvement_factor(
        self, population: int, metric: str = "std"
    ) -> float:
        """Basic divided by full-system value (the paper's ~10x claim)."""
        basic = getattr(self.cells[(population, SystemVariant.BASIC)], metric)
        best = getattr(
            self.cells[(population, SystemVariant.DUAL_PEER_ADAPTATION)],
            metric,
        )
        if best == 0.0:
            return float("inf")
        return basic / best


def run_one_trial(
    population: int,
    variant: SystemVariant,
    config: ExperimentConfig,
    trial: int,
) -> StatSummary:
    """Build one network and summarize its workload index.

    The adaptation variant first runs the engine to (bounded) convergence,
    as in the paper, where adaptation is on while hot spots are active.
    """
    streams = RngStreams(config.seed).fork(trial * 1_000 + population % 997)
    field = build_field(config, streams)
    nodes = draw_population(population, config, streams)
    network = build_network(
        variant, population, config, streams, field=field, nodes=nodes
    )
    if network.engine is not None:
        network.engine.run_until_stable(
            max_rounds=config.max_adaptation_rounds, quiet_rounds=2
        )
    return network.calc.summary()


def run_scaling(
    config: ExperimentConfig,
    populations: Sequence[int] = PAPER_POPULATIONS,
    variants: Sequence[SystemVariant] = ALL_VARIANTS,
) -> ScalingResult:
    """Produce the Figure 5/6 series for all populations and variants."""
    cells: Dict[Tuple[int, SystemVariant], ScalingCell] = {}
    for population in populations:
        for variant in variants:
            stds: List[float] = []
            means: List[float] = []
            maxima: List[float] = []
            for trial in range(config.trials):
                summary = run_one_trial(population, variant, config, trial)
                stds.append(summary.std)
                means.append(summary.mean)
                maxima.append(summary.maximum)
            cells[(population, variant)] = ScalingCell(
                population=population,
                variant=variant,
                trials=config.trials,
                std=summarize(stds).mean,
                mean=summarize(means).mean,
                maximum=summarize(maxima).mean,
                std_ci=confidence_interval95(stds),
                mean_ci=confidence_interval95(means),
            )
    return ScalingResult(populations=list(populations), cells=cells)


def render_report(result: ScalingResult) -> str:
    """The two paper figures as text tables (log-scale quantities)."""
    lines = ["Figure 5: standard deviation of workload index", ""]
    header = f"{'nodes':>7}  " + "  ".join(
        f"{variant.value:>22}" for variant in ALL_VARIANTS
    )
    lines.append(header)
    for population in result.populations:
        cells = result.row(population)
        lines.append(
            f"{population:>7}  "
            + "  ".join(
                f"{cell.std:>13.6f} ±{cell.std_ci:<7.4f}" for cell in cells
            )
        )
    lines.append("")
    lines.append("Figure 6: mean of workload index")
    lines.append("")
    lines.append(header)
    for population in result.populations:
        cells = result.row(population)
        lines.append(
            f"{population:>7}  "
            + "  ".join(
                f"{cell.mean:>13.6f} ±{cell.mean_ci:<7.4f}" for cell in cells
            )
        )
    lines.append("")
    lines.append("improvement of dual peer + adaptation over basic:")
    for population in result.populations:
        lines.append(
            f"  {population:>7} nodes: std {result.improvement_factor(population, 'std'):>6.1f}x"
            f"  mean {result.improvement_factor(population, 'mean'):>6.1f}x"
        )
    return "\n".join(lines)
