"""Figures 7--10: convergence of the load-balance adaptation.

Setup (Section 3.2): a GeoGrid of 2 000 peers is built with the dual-peer
technique only; when hot spots appear, the adaptation features are turned
on, and the max/mean/std of the workload index are recorded at the end of
each round of adaptation (Figures 7/8) and after each individual
adaptation (Figures 9/10).

Scenarios:

* **static hot spot** -- hot spots never move;
* **moving hot spot** -- hot spots move 4..10 steps per adaptation round,
  i.e. far faster than the adaptation cadence;
* **no adaptation** -- the moving scenario with adaptation off, the
  reference line of Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.loadbalance import AdaptationEngine
from repro.metrics.collector import TimeSeriesCollector
from repro.sim.rng import RngStreams
from repro.experiments.build import BuiltNetwork, build_field, build_network, draw_population
from repro.experiments.config import (
    ExperimentConfig,
    PAPER_CONVERGENCE_POPULATION,
    SystemVariant,
)

#: Scenario labels used as series names in the collectors.
STATIC = "static hot spot adaptation"
MOVING = "dynamic hot spot adaptation"
NO_ADAPTATION = "no adaptation"

#: The paper records roughly this many rounds (Figures 7/8)...
DEFAULT_ROUNDS = 25
#: ...and up to this many individual adaptations (Figures 9/10).
DEFAULT_MAX_ADAPTATIONS = 500


@dataclass
class ConvergenceResult:
    """Both recordings for one scenario."""

    scenario: str
    #: Summary at x = round number (x = 0 is the pre-adaptation state).
    by_round: TimeSeriesCollector
    #: Summary at x = cumulative number of adaptations.
    by_adaptation: TimeSeriesCollector
    total_adaptations: int
    mechanism_usage: Dict[str, int]


def _build_dual_peer_network(
    config: ExperimentConfig, population: int, trial: int
) -> BuiltNetwork:
    streams = RngStreams(config.seed).fork(500_000 + trial)
    field = build_field(config, streams)
    nodes = draw_population(population, config, streams)
    return build_network(
        SystemVariant.DUAL_PEER, population, config, streams,
        field=field, nodes=nodes,
    )


def run_scenario(
    scenario: str,
    config: ExperimentConfig,
    population: int = PAPER_CONVERGENCE_POPULATION,
    rounds: int = DEFAULT_ROUNDS,
    max_adaptations: int = DEFAULT_MAX_ADAPTATIONS,
    trial: int = 0,
) -> ConvergenceResult:
    """Run one convergence scenario and record both figure encodings."""
    if scenario not in (STATIC, MOVING, NO_ADAPTATION):
        raise ValueError(f"unknown scenario {scenario!r}")
    network = _build_dual_peer_network(config, population, trial)
    streams = RngStreams(config.seed).fork(600_000 + trial)
    motion_rng = streams.stream("hotspot-motion")

    by_round = TimeSeriesCollector()
    by_adaptation = TimeSeriesCollector()
    by_round.record(scenario, 0, network.calc.summary())
    by_adaptation.record(scenario, 0, network.calc.summary())

    if scenario == NO_ADAPTATION:
        for round_number in range(1, rounds + 1):
            network.field.migrate_epoch(motion_rng)
            by_round.record(scenario, round_number, network.calc.summary())
        return ConvergenceResult(
            scenario=scenario,
            by_round=by_round,
            by_adaptation=by_adaptation,
            total_adaptations=0,
            mechanism_usage={},
        )

    def on_adaptation(count: int, record) -> None:
        if count <= max_adaptations:
            by_adaptation.record(scenario, count, engine.calc.summary())

    engine = AdaptationEngine(
        network.overlay,
        network.calc,
        config=config.adaptation,
        on_adaptation=on_adaptation,
    )
    for round_number in range(1, rounds + 1):
        if scenario == MOVING:
            # Hot spots move 4..10 steps before a round of adaptation ends.
            network.field.migrate_epoch(motion_rng, steps_range=(4, 10))
        engine.run_round()
        by_round.record(scenario, round_number, network.calc.summary())
        if engine.total_adaptations >= max_adaptations:
            break
    return ConvergenceResult(
        scenario=scenario,
        by_round=by_round,
        by_adaptation=by_adaptation,
        total_adaptations=engine.total_adaptations,
        mechanism_usage=engine.mechanism_usage(),
    )


def run_all_scenarios(
    config: ExperimentConfig,
    population: int = PAPER_CONVERGENCE_POPULATION,
    rounds: int = DEFAULT_ROUNDS,
    max_adaptations: int = DEFAULT_MAX_ADAPTATIONS,
) -> Dict[str, ConvergenceResult]:
    """Run static, moving, and no-adaptation on identical networks."""
    return {
        scenario: run_scenario(
            scenario, config, population=population, rounds=rounds,
            max_adaptations=max_adaptations,
        )
        for scenario in (STATIC, MOVING, NO_ADAPTATION)
    }


def merged_by_round(
    results: Dict[str, ConvergenceResult]
) -> TimeSeriesCollector:
    """All scenarios' per-round series in one collector (Figures 7/8)."""
    merged = TimeSeriesCollector()
    for result in results.values():
        for name in result.by_round.names():
            for point in result.by_round.get(name):
                merged.record(name, point.x, point.summary)
    return merged


def merged_by_adaptation(
    results: Dict[str, ConvergenceResult]
) -> TimeSeriesCollector:
    """Adaptation-count series in one collector (Figures 9/10)."""
    merged = TimeSeriesCollector()
    for result in results.values():
        for name in result.by_adaptation.names():
            for point in result.by_adaptation.get(name):
                merged.record(name, point.x, point.summary)
    return merged


def thin_collector(
    collector: TimeSeriesCollector, step: int
) -> TimeSeriesCollector:
    """Keep every ``step``-th x (plus the first and last of each series).

    The per-adaptation recording has up to 500 points per series; tables
    print a readable subsample while the full data stays available on the
    original collector.
    """
    if step < 1:
        raise ValueError(f"step must be >= 1, got {step}")
    thinned = TimeSeriesCollector()
    for name in collector.names():
        points = collector.get(name)
        for index, point in enumerate(points):
            if (
                index == 0
                or index == len(points) - 1
                or int(point.x) % step == 0
            ):
                thinned.record(name, point.x, point.summary)
    return thinned


def render_report(
    results: Dict[str, ConvergenceResult], adaptation_step: int = 25
) -> str:
    """Figures 7--10 as four text tables."""
    rounds = merged_by_round(results)
    ops = thin_collector(merged_by_adaptation(results), adaptation_step)
    sections = [
        (
            "Figure 7: convergence of the MEAN workload index, by round",
            rounds.render_table("mean", x_label="round"),
        ),
        (
            "Figure 8: convergence of the STD-DEV of workload index, by round",
            rounds.render_table("std", x_label="round"),
        ),
        (
            "Figure 9: STD-DEV of workload index, by number of adaptations",
            ops.render_table("std", x_label="adaptations"),
        ),
        (
            "Figure 10: MEAN workload index, by number of adaptations",
            ops.render_table("mean", x_label="adaptations"),
        ),
    ]
    lines: List[str] = []
    for title, table in sections:
        lines.append(title)
        lines.append("")
        lines.append(table)
        lines.append("")
    for scenario, result in results.items():
        if result.total_adaptations:
            lines.append(
                f"{scenario}: {result.total_adaptations} adaptations, "
                f"mechanism usage {result.mechanism_usage}"
            )
    return "\n".join(lines)
