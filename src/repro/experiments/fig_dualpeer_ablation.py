"""Dual-peer ablation: the paper's three claimed advantages, quantified.

Section 2.3 claims dual peer (1) improves fault resilience, (2) reduces
region-split operations, and (3) improves load balance.  This driver
measures all three against the basic system on identical populations:

* split operations during construction (claim 2);
* surviving regions with intact state after a failure burst -- dual-peer
  regions fail over to their secondary, basic regions lose their state on
  repair (claim 1);
* workload-index spread (claim 3; the full comparison is Figures 5/6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.metrics.stats import StatSummary
from repro.sim.rng import RngStreams
from repro.experiments.build import build_field, build_network, draw_population
from repro.experiments.config import ExperimentConfig, SystemVariant


@dataclass(frozen=True)
class AblationRow:
    """Measurements for one variant."""

    variant: SystemVariant
    population: int
    regions: int
    splits: int
    #: Fraction of failure events absorbed by a secondary promotion
    #: (state preserved) rather than structural repair (state lost).
    failover_fraction: float
    index_summary: StatSummary


def run_ablation(
    config: ExperimentConfig,
    population: int = 1_000,
    failures: int = 100,
) -> Dict[SystemVariant, AblationRow]:
    """Build both variants, inject a failure burst, measure the claims."""
    results: Dict[SystemVariant, AblationRow] = {}
    for variant in (SystemVariant.BASIC, SystemVariant.DUAL_PEER):
        streams = RngStreams(config.seed).fork(800_000)
        field = build_field(config, streams)
        nodes = draw_population(population, config, streams)
        network = build_network(
            variant, population, config, streams, field=field, nodes=nodes
        )
        build_splits = network.overlay.stats.splits
        failure_rng = streams.stream("failures")
        alive = list(network.nodes)
        for _ in range(failures):
            victim = alive.pop(failure_rng.randrange(len(alive)))
            network.overlay.fail(victim)
        promotions = network.overlay.stats.promotions
        results[variant] = AblationRow(
            variant=variant,
            population=population,
            regions=network.overlay.space.region_count(),
            splits=build_splits,
            failover_fraction=promotions / failures if failures else 0.0,
            index_summary=network.calc.summary(),
        )
    return results


def render_report(results: Dict[SystemVariant, AblationRow]) -> str:
    """The claim-by-claim comparison rows."""
    lines = [
        "Dual-peer ablation (construction splits, failure absorption, balance)",
        "",
        f"{'variant':<22} {'regions':>8} {'splits':>8} "
        f"{'failover%':>10} {'idx std':>10} {'idx max':>10}",
    ]
    for variant, row in results.items():
        lines.append(
            f"{variant.value:<22} {row.regions:>8} {row.splits:>8} "
            f"{row.failover_fraction * 100:>9.1f}% "
            f"{row.index_summary.std:>10.4f} "
            f"{row.index_summary.maximum:>10.4f}"
        )
    basic = results[SystemVariant.BASIC]
    dual = results[SystemVariant.DUAL_PEER]
    if dual.splits:
        lines.append("")
        lines.append(
            f"split reduction: {basic.splits / dual.splits:.2f}x fewer "
            f"splits under dual peer"
        )
    return "\n".join(lines)
