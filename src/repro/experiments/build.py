"""Construction of experiment networks.

One place assembles a GeoGrid of any variant under any seed, so that the
three variants of a comparison differ *only* in the mechanism under test:
all share node coordinates, capacities, and the hot-spot field (same named
RNG streams under the same master seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.node import Node
from repro.core.overlay import BasicGeoGrid
from repro.dualpeer.overlay import DualPeerGeoGrid
from repro.loadbalance import (
    AdaptationEngine,
    WorkloadIndexCalculator,
)
from repro.sim.rng import RngStreams
from repro.workload import (
    GnutellaCapacityDistribution,
    HotspotField,
    UniformPlacement,
)
from repro.experiments.config import ExperimentConfig, SystemVariant


@dataclass
class BuiltNetwork:
    """A constructed experiment network plus its measurement plumbing."""

    variant: SystemVariant
    overlay: BasicGeoGrid
    field: HotspotField
    calc: WorkloadIndexCalculator
    nodes: List[Node]
    #: Present only for the adaptation variant.
    engine: Optional[AdaptationEngine]


def build_field(
    config: ExperimentConfig, streams: RngStreams
) -> HotspotField:
    """The hot-spot workload field for one trial."""
    return HotspotField.random(
        config.bounds,
        count=config.hotspot_count,
        rng=streams.stream("hotspots"),
        radius_range=config.hotspot_radius_range,
        cell_size=config.cell_size,
    )


def draw_population(
    count: int, config: ExperimentConfig, streams: RngStreams
) -> List[Node]:
    """Draw ``count`` nodes: uniform placement, Gnutella-skewed capacity."""
    placement = UniformPlacement(config.bounds)
    capacities = GnutellaCapacityDistribution()
    place_rng = streams.stream("placement")
    capacity_rng = streams.stream("capacity")
    return [
        Node(
            node_id=index,
            coord=placement.sample(place_rng),
            capacity=capacities.sample(capacity_rng),
        )
        for index in range(count)
    ]


def build_network(
    variant: SystemVariant,
    count: int,
    config: ExperimentConfig,
    streams: RngStreams,
    field: Optional[HotspotField] = None,
    nodes: Optional[List[Node]] = None,
) -> BuiltNetwork:
    """Assemble one network of ``count`` nodes under ``variant``.

    Passing the same ``streams`` for different variants reproduces the
    same nodes and hot spots, isolating the variant effect.
    """
    if field is None:
        field = build_field(config, streams)
    if nodes is None:
        nodes = draw_population(count, config, streams)
    entry_rng = streams.stream("entry")
    overlay_cls = DualPeerGeoGrid if variant.uses_dual_peer else BasicGeoGrid
    overlay = overlay_cls(
        config.bounds, rng=entry_rng, load_fn=field.region_load
    )
    for node in nodes:
        overlay.join(node)
    calc = WorkloadIndexCalculator(
        overlay,
        field.region_load,
        replication_fraction=config.adaptation.replication_fraction,
    )
    engine = None
    if variant.uses_adaptation:
        engine = AdaptationEngine(
            overlay, calc, config=config.adaptation
        )
    return BuiltNetwork(
        variant=variant,
        overlay=overlay,
        field=field,
        calc=calc,
        nodes=list(nodes),
        engine=engine,
    )
