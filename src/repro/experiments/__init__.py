"""Experiment drivers regenerating every figure of the paper.

========  ===================================================  =========================================
Figure    What it shows                                        Driver
========  ===================================================  =========================================
Fig 1     15-node partition + routing example                  ``examples/quickstart.py`` (uses core+viz)
Fig 2/3   region size & load maps, basic vs dual peer          :mod:`repro.experiments.fig_region_maps`
Fig 4     the eight mechanisms (illustration)                  ``tests/loadbalance/test_mechanisms.py``
Fig 5/6   std-dev / mean of workload index vs population       :mod:`repro.experiments.fig_scaling`
Fig 7/8   convergence by adaptation round (static/moving)      :mod:`repro.experiments.fig_convergence`
Fig 9/10  convergence by number of adaptations                 :mod:`repro.experiments.fig_convergence`
(claim)   O(2*sqrt(N)) routing hops                            :mod:`repro.experiments.fig_routing`
(claim)   dual peer: fewer splits, failover, balance           :mod:`repro.experiments.fig_dualpeer_ablation`
========  ===================================================  =========================================

Every driver is deterministic under its
:class:`~repro.experiments.config.ExperimentConfig` seed and returns plain
result dataclasses plus a ``render_report`` text table, which is what the
benchmark harness prints.
"""

from repro.experiments.config import (
    ExperimentConfig,
    PAPER_BOUNDS,
    PAPER_CONVERGENCE_POPULATION,
    PAPER_POPULATIONS,
    SystemVariant,
)
from repro.experiments.build import BuiltNetwork, build_field, build_network, draw_population

__all__ = [
    "ExperimentConfig",
    "SystemVariant",
    "PAPER_BOUNDS",
    "PAPER_POPULATIONS",
    "PAPER_CONVERGENCE_POPULATION",
    "BuiltNetwork",
    "build_field",
    "build_network",
    "draw_population",
]
