"""Figures 2 and 3: region size and load distribution at 500 nodes.

Figure 2 visualizes a 500-node *basic* GeoGrid built with the random
bootstrapping algorithm; Figure 3 the same population admitted through the
*dual peer* technique.  The paper's observations, which this driver
quantifies:

1. dual peer yields **fewer regions** whose **sizes track owner
   capacities** (powerful nodes own bigger regions);
2. dual peer leaves **fewer heavily loaded regions**, though a few remain
   (they are what the adaptation mechanisms then fix).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.metrics.stats import StatSummary, summarize
from repro.sim.rng import RngStreams
from repro.viz.ascii_map import render_region_map
from repro.experiments.build import BuiltNetwork, build_field, build_network, draw_population
from repro.experiments.config import ExperimentConfig, SystemVariant

#: Node population of Figures 2/3.
FIGURE_POPULATION = 500


@dataclass
class RegionMapResult:
    """Measured structure of one 500-node network."""

    variant: SystemVariant
    region_count: int
    split_count: int
    region_area: StatSummary
    region_load_index: StatSummary
    #: Number of regions whose index exceeds 2x the mean (the "darker
    #: shade" regions of the paper's pictures).
    heavily_loaded_regions: int
    #: Pearson correlation between region area and primary capacity;
    #: positive under dual peer ("more powerful nodes own bigger regions").
    area_capacity_correlation: float
    ascii_map: str


def _correlation(xs: List[float], ys: List[float]) -> float:
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / n
    var_x = sum((x - mean_x) ** 2 for x in xs) / n
    var_y = sum((y - mean_y) ** 2 for y in ys) / n
    if var_x == 0.0 or var_y == 0.0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def measure_network(network: BuiltNetwork, map_size: int = 48) -> RegionMapResult:
    """Extract the Figure 2/3 quantities from a built network."""
    regions = list(network.overlay.space.regions)
    areas = [region.rect.area for region in regions]
    indices = [network.calc.region_index(region) for region in regions]
    index_summary = summarize(indices)
    threshold = 2.0 * index_summary.mean
    heavy = sum(1 for index in indices if index > threshold and index > 0)
    capacities = [
        region.primary.capacity if region.primary is not None else 0.0
        for region in regions
    ]
    # Log-capacity correlation: capacities span four orders of magnitude.
    log_capacities = [math.log10(max(c, 1e-12)) for c in capacities]
    ascii_map = render_region_map(
        network.overlay.space,
        network.calc.region_index,
        width=map_size,
        height=map_size // 2,
    )
    return RegionMapResult(
        variant=network.variant,
        region_count=len(regions),
        split_count=network.overlay.stats.splits,
        region_area=summarize(areas),
        region_load_index=index_summary,
        heavily_loaded_regions=heavy,
        area_capacity_correlation=_correlation(log_capacities, areas),
        ascii_map=ascii_map,
    )


def run_fig2_fig3(
    config: ExperimentConfig, population: int = FIGURE_POPULATION
) -> Dict[SystemVariant, RegionMapResult]:
    """Build the basic and dual-peer 500-node networks and measure both.

    Both networks share identical node coordinates, capacities, and hot
    spots, so every difference in the result is the dual-peer effect.
    """
    results: Dict[SystemVariant, RegionMapResult] = {}
    for variant in (SystemVariant.BASIC, SystemVariant.DUAL_PEER):
        streams = RngStreams(config.seed)
        field = build_field(config, streams)
        nodes = draw_population(population, config, streams)
        network = build_network(
            variant, population, config, streams, field=field, nodes=nodes
        )
        results[variant] = measure_network(network)
    return results


def render_report(results: Dict[SystemVariant, RegionMapResult]) -> str:
    """The paper-style comparison rows plus the two shaded maps."""
    lines = [
        "Figures 2/3: region size and load distribution (500 nodes)",
        "",
        f"{'variant':<22} {'regions':>8} {'splits':>8} "
        f"{'area std':>10} {'idx max':>10} {'idx std':>10} "
        f"{'heavy':>6} {'corr(area,cap)':>15}",
    ]
    for variant, result in results.items():
        lines.append(
            f"{variant.value:<22} {result.region_count:>8} "
            f"{result.split_count:>8} {result.region_area.std:>10.3f} "
            f"{result.region_load_index.maximum:>10.4f} "
            f"{result.region_load_index.std:>10.4f} "
            f"{result.heavily_loaded_regions:>6} "
            f"{result.area_capacity_correlation:>15.3f}"
        )
    for variant, result in results.items():
        lines.append("")
        lines.append(f"--- {variant.value}: load-index map (darker = hotter) ---")
        lines.append(result.ascii_map)
    return "\n".join(lines)
