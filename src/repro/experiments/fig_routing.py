"""Routing-cost experiment (the paper's O(2*sqrt(N)) claim, Section 2.2).

"Given a GeoGrid plane of N regions, routing between a pair of randomly
chosen regions has the overhead of O(2*sqrt(N)) in terms of the number of
routing hops."  The paper states this analytically; this driver verifies
it empirically across populations and also reports the geographic path
stretch (how close the routed path stays to the straight line -- the
physical/network proximity similarity GeoGrid exploits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.routing import route_to_point, stretch
from repro.metrics.stats import StatSummary, summarize
from repro.sim.rng import RngStreams
from repro.workload import UniformPlacement
from repro.experiments.build import build_network, draw_population
from repro.experiments.config import ExperimentConfig, SystemVariant


@dataclass(frozen=True)
class RoutingCell:
    """Hop statistics for one population."""

    population: int
    samples: int
    hops: StatSummary
    mean_stretch: float
    #: The paper's bound for this population.
    bound: float

    @property
    def within_bound(self) -> bool:
        """Whether the mean hop count respects 2*sqrt(N)."""
        return self.hops.mean <= self.bound


def run_routing(
    config: ExperimentConfig,
    populations: Sequence[int] = (500, 1_000, 2_000, 4_000, 8_000),
    samples: int = 300,
    variant: SystemVariant = SystemVariant.DUAL_PEER,
) -> List[RoutingCell]:
    """Measure hop counts between random source/destination pairs."""
    cells: List[RoutingCell] = []
    for population in populations:
        streams = RngStreams(config.seed).fork(700_000 + population)
        nodes = draw_population(population, config, streams)
        network = build_network(
            variant, population, config, streams, nodes=nodes
        )
        sample_rng = streams.stream("routing-samples")
        placement = UniformPlacement(config.bounds)
        hops: List[float] = []
        stretches: List[float] = []
        for _ in range(samples):
            source = network.overlay.random_node()
            target = placement.sample(sample_rng)
            start = next(iter(network.overlay.primary_regions(source)), None)
            if start is None:
                continue
            result = route_to_point(network.overlay.space, start, target)
            hops.append(result.hops)
            s = stretch(result)
            if s is not None:
                stretches.append(s)
        region_count = network.overlay.space.region_count()
        cells.append(
            RoutingCell(
                population=population,
                samples=len(hops),
                hops=summarize(hops),
                mean_stretch=summarize(stretches).mean,
                bound=2.0 * (region_count ** 0.5),
            )
        )
    return cells


def render_report(cells: List[RoutingCell]) -> str:
    """Hop-count rows versus the analytical bound."""
    lines = [
        "Routing cost vs population (claim: O(2*sqrt(N)) hops)",
        "",
        f"{'nodes':>7} {'mean hops':>10} {'max hops':>9} "
        f"{'2*sqrt(N)':>10} {'ok':>4} {'stretch':>8}",
    ]
    for cell in cells:
        lines.append(
            f"{cell.population:>7} {cell.hops.mean:>10.1f} "
            f"{cell.hops.maximum:>9.0f} {cell.bound:>10.1f} "
            f"{'yes' if cell.within_bound else 'NO':>4} "
            f"{cell.mean_stretch:>8.2f}"
        )
    return "\n".join(lines)
