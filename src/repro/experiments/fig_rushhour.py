"""Rush hour: adaptation against *directionally* drifting hot spots.

The paper motivates GeoGrid with commuter traffic: inbound highways are
hot in the morning, outbound ones in the afternoon (Section 2).  Its
evaluation, however, moves hot spots by random walk.  This experiment is
the harder, motivation-faithful variant: hot spots march toward downtown
for a morning of rounds, then outward for an afternoon, with the
adaptation engine running -- versus the same commute with adaptation off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.loadbalance import AdaptationEngine, WorkloadIndexCalculator
from repro.dualpeer import DualPeerGeoGrid
from repro.metrics.collector import TimeSeriesCollector
from repro.sim.rng import RngStreams
from repro.viz.sparkline import series_sparkline
from repro.workload import RushHourField
from repro.experiments.build import draw_population
from repro.experiments.config import ExperimentConfig

ADAPTIVE = "rush hour with adaptation"
FROZEN = "rush hour without adaptation"


@dataclass
class RushHourResult:
    """Per-round series for one commute simulation."""

    by_round: TimeSeriesCollector
    adaptations: int
    mechanism_usage: Dict[str, int]


def run_commute(
    config: ExperimentConfig,
    adaptive: bool,
    population: int = 1_000,
    morning_rounds: int = 10,
    afternoon_rounds: int = 10,
    trial: int = 0,
) -> RushHourResult:
    """One full commute (morning inbound + afternoon outbound)."""
    streams = RngStreams(config.seed).fork(940_000 + trial)
    field = RushHourField.random(
        config.bounds,
        count=config.hotspot_count,
        rng=streams.stream("hotspots"),
        radius_range=config.hotspot_radius_range,
        cell_size=config.cell_size,
    )
    nodes = draw_population(population, config, streams)
    overlay = DualPeerGeoGrid(
        config.bounds, rng=streams.stream("entry"), load_fn=field.region_load
    )
    for node in nodes:
        overlay.join(node)
    calc = WorkloadIndexCalculator(overlay, field.region_load)
    engine = AdaptationEngine(overlay, calc, config=config.adaptation)
    motion = streams.stream("hotspot-motion")

    label = ADAPTIVE if adaptive else FROZEN
    collector = TimeSeriesCollector()
    collector.record(label, 0, calc.summary())
    round_number = 0
    for phase, rounds in (
        ("morning", morning_rounds),
        ("afternoon", afternoon_rounds),
    ):
        field.set_phase(phase)
        for _ in range(rounds):
            round_number += 1
            field.migrate_epoch(motion, steps_range=(4, 10))
            if adaptive:
                engine.run_round()
            collector.record(label, round_number, calc.summary())
    overlay.check_invariants()
    return RushHourResult(
        by_round=collector,
        adaptations=engine.total_adaptations,
        mechanism_usage=engine.mechanism_usage(),
    )


def run_rushhour(
    config: ExperimentConfig, population: int = 1_000
) -> Dict[str, RushHourResult]:
    """Adaptive vs frozen, identical commutes (same seeds)."""
    return {
        ADAPTIVE: run_commute(config, adaptive=True, population=population),
        FROZEN: run_commute(config, adaptive=False, population=population),
    }


def render_report(results: Dict[str, RushHourResult]) -> str:
    """Per-round comparison table plus sparklines."""
    merged = TimeSeriesCollector()
    for result in results.values():
        for name in result.by_round.names():
            for point in result.by_round.get(name):
                merged.record(name, point.x, point.summary)
    lines = [
        "Rush hour: directional hot-spot drift (morning inbound, "
        "afternoon outbound)",
        "",
        merged.render_table("std", x_label="round"),
        "",
    ]
    for name in merged.names():
        lines.append(
            f"std shape {name:<32} {series_sparkline(merged, name, 'std')}"
        )
    adaptive = results[ADAPTIVE]
    lines.append("")
    lines.append(
        f"{adaptive.adaptations} adaptations, mechanisms "
        f"{adaptive.mechanism_usage}"
    )
    return "\n".join(lines)
