"""Ablations of the design choices DESIGN.md calls out.

Each ablation isolates one knob on otherwise-identical networks:

* **split policy** -- longest-side vs strict latitude-first alternation vs
  a fixed axis: region aspect ratios and routing hops;
* **trigger ratio** -- the sqrt(2) hysteresis vs tighter/looser triggers:
  adaptation volume vs achieved balance;
* **search TTL** -- reach of the remote mechanisms vs message cost;
* **replication fraction** -- charging secondaries for replicated load;
* **mechanism set** -- local-only (a)-(e) vs the full set: what the
  remote mechanisms (f)-(h) buy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.policies import (
    fixed_axis_policy,
    latitude_first_policy,
    longest_side_policy,
)
from repro.core.routing import route_to_point
from repro.dualpeer import DualPeerGeoGrid
from repro.geometry import SplitAxis
from repro.loadbalance import (
    AdaptationConfig,
    AdaptationEngine,
    WorkloadIndexCalculator,
    default_mechanisms,
)
from repro.metrics.stats import StatSummary, summarize
from repro.sim.rng import RngStreams
from repro.workload import UniformPlacement
from repro.experiments.build import build_field, build_network, draw_population
from repro.experiments.config import ExperimentConfig, SystemVariant


# ---------------------------------------------------------------------
# Split policy
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class SplitPolicyRow:
    """Structure and routing quality under one split policy."""

    name: str
    mean_aspect_ratio: float
    max_aspect_ratio: float
    mean_hops: float
    area_std: float


def ablate_split_policy(
    config: ExperimentConfig,
    population: int = 1_000,
    samples: int = 200,
) -> List[SplitPolicyRow]:
    """Compare split policies on identical populations."""
    policies = [
        ("longest-side (default)", longest_side_policy),
        ("latitude-first alternation", latitude_first_policy(config.bounds)),
        ("fixed vertical (baseline)", fixed_axis_policy(SplitAxis.VERTICAL)),
    ]
    rows: List[SplitPolicyRow] = []
    for name, policy in policies:
        streams = RngStreams(config.seed).fork(910_000)
        nodes = draw_population(population, config, streams)
        overlay = DualPeerGeoGrid(
            config.bounds, rng=streams.stream("entry"), split_policy=policy
        )
        for node in nodes:
            overlay.join(node)
        aspects = [region.rect.aspect_ratio for region in overlay.space.regions]
        areas = [region.rect.area for region in overlay.space.regions]
        sample_rng = streams.stream("routing-samples")
        placement = UniformPlacement(config.bounds)
        hops = []
        for _ in range(samples):
            source = overlay.random_node()
            start = next(iter(overlay.primary_regions(source)), None)
            if start is None:
                continue
            result = route_to_point(
                overlay.space, start, placement.sample(sample_rng)
            )
            hops.append(result.hops)
        rows.append(
            SplitPolicyRow(
                name=name,
                mean_aspect_ratio=summarize(aspects).mean,
                max_aspect_ratio=summarize(aspects).maximum,
                mean_hops=summarize(hops).mean,
                area_std=summarize(areas).std,
            )
        )
    return rows


# ---------------------------------------------------------------------
# Adaptation knobs (shared runner)
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class AdaptationAblationRow:
    """Balance achieved and effort spent under one configuration."""

    label: str
    adaptations: int
    search_messages: int
    #: Estimated handshake/state-transfer/update messages spent executing.
    execution_messages: int
    final: StatSummary
    remote_usage: int


def _run_adaptation(
    config: ExperimentConfig,
    adaptation: AdaptationConfig,
    population: int,
    label: str,
    mechanisms=None,
) -> AdaptationAblationRow:
    streams = RngStreams(config.seed).fork(920_000)
    field = build_field(config, streams)
    nodes = draw_population(population, config, streams)
    network = build_network(
        SystemVariant.DUAL_PEER, population, config, streams,
        field=field, nodes=nodes,
    )
    calc = WorkloadIndexCalculator(
        network.overlay,
        field.region_load,
        replication_fraction=adaptation.replication_fraction,
    )
    engine = AdaptationEngine(
        network.overlay, calc, config=adaptation, mechanisms=mechanisms
    )
    engine.run_until_stable(max_rounds=config.max_adaptation_rounds)
    usage = engine.mechanism_usage()
    remote = sum(usage.get(key, 0) for key in ("f", "g", "h"))
    return AdaptationAblationRow(
        label=label,
        adaptations=engine.total_adaptations,
        search_messages=engine.search_messages,
        execution_messages=engine.adaptation_messages,
        final=calc.summary(),
        remote_usage=remote,
    )


def ablate_trigger_ratio(
    config: ExperimentConfig,
    population: int = 1_000,
    ratios: Sequence[float] = (1.05, math.sqrt(2.0), 2.0, 4.0),
) -> List[AdaptationAblationRow]:
    """Sweep the trigger hysteresis around the paper's sqrt(2)."""
    return [
        _run_adaptation(
            config,
            AdaptationConfig(trigger_ratio=ratio),
            population,
            label=f"ratio={ratio:.2f}",
        )
        for ratio in ratios
    ]


def ablate_search_ttl(
    config: ExperimentConfig,
    population: int = 1_000,
    ttls: Sequence[int] = (1, 2, 4, 8),
) -> List[AdaptationAblationRow]:
    """Sweep the remote-search hop budget."""
    return [
        _run_adaptation(
            config,
            AdaptationConfig(search_ttl=ttl),
            population,
            label=f"ttl={ttl}",
        )
        for ttl in ttls
    ]


def ablate_replication_fraction(
    config: ExperimentConfig,
    population: int = 1_000,
    fractions: Sequence[float] = (0.0, 0.25, 0.5),
) -> List[AdaptationAblationRow]:
    """Charge secondaries a fraction of the replicated load."""
    return [
        _run_adaptation(
            config,
            AdaptationConfig(replication_fraction=fraction),
            population,
            label=f"replication={fraction:.2f}",
        )
        for fraction in fractions
    ]


def ablate_mechanism_sets(
    config: ExperimentConfig,
    population: int = 1_000,
) -> List[AdaptationAblationRow]:
    """Local mechanisms only vs the full set (what remote search buys)."""
    all_mechanisms = default_mechanisms()
    local_only = [m for m in all_mechanisms if not m.remote]
    rows = [
        _run_adaptation(
            config, AdaptationConfig(), population,
            label="local only (a-e)", mechanisms=local_only,
        ),
        _run_adaptation(
            config, AdaptationConfig(), population,
            label="all mechanisms (a-h)", mechanisms=default_mechanisms(),
        ),
    ]
    return rows


# ---------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------
def render_split_policy_report(rows: List[SplitPolicyRow]) -> str:
    """Split-policy comparison rows."""
    lines = [
        "Ablation: split-axis policy",
        "",
        f"{'policy':<30} {'aspect mean':>12} {'aspect max':>11} "
        f"{'mean hops':>10} {'area std':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row.name:<30} {row.mean_aspect_ratio:>12.2f} "
            f"{row.max_aspect_ratio:>11.1f} {row.mean_hops:>10.1f} "
            f"{row.area_std:>9.2f}"
        )
    return "\n".join(lines)


def render_adaptation_report(title: str, rows: List[AdaptationAblationRow]) -> str:
    """Adaptation-knob comparison rows."""
    lines = [
        f"Ablation: {title}",
        "",
        f"{'configuration':<24} {'adaptations':>12} {'remote':>7} "
        f"{'search msgs':>12} {'exec msgs':>10} {'final std':>12} "
        f"{'final mean':>12}",
    ]
    for row in rows:
        lines.append(
            f"{row.label:<24} {row.adaptations:>12} {row.remote_usage:>7} "
            f"{row.search_messages:>12} {row.execution_messages:>10} "
            f"{row.final.std:>12.5f} {row.final.mean:>12.5f}"
        )
    return "\n".join(lines)
