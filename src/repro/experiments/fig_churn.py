"""Resilience under sustained churn.

GeoGrid is designed for "unpredictable rate of node join, departure and
failure"; the paper asserts this qualitatively.  This driver quantifies
it: a dual-peer (or basic) network endures Poisson churn at a chosen
rate for a stretch of virtual time while background queries keep flowing,
and we record

* structural health (invariants checked continuously, repair actions),
* how many failures the dual-peer failover absorbed without data loss,
* routing quality drift (hop counts before vs after the churn phase).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List

from repro.core.node import Node
from repro.metrics.stats import summarize
from repro.sim.churn import ChurnConfig, ChurnProcess
from repro.sim.rng import RngStreams
from repro.sim.scheduler import EventScheduler
from repro.workload import GnutellaCapacityDistribution, UniformPlacement
from repro.experiments.build import build_field, build_network, draw_population
from repro.experiments.config import ExperimentConfig, SystemVariant


@dataclass(frozen=True)
class ChurnCell:
    """Outcome of one churn run."""

    variant: SystemVariant
    churn_events: int
    joins: int
    departures: int
    failures: int
    #: Fraction of failures absorbed by secondary promotion.
    failover_fraction: float
    takeovers: int
    merges: int
    hops_before: float
    hops_after: float
    final_population: int


def run_churn(
    config: ExperimentConfig,
    variant: SystemVariant = SystemVariant.DUAL_PEER,
    population: int = 1_000,
    duration: float = 200.0,
    events_per_unit: float = 2.0,
    samples: int = 150,
) -> ChurnCell:
    """Subject one network to sustained churn; measure what it cost."""
    streams = RngStreams(config.seed).fork(930_000)
    field = build_field(config, streams)
    nodes = draw_population(population, config, streams)
    network = build_network(
        variant, population, config, streams, field=field, nodes=nodes
    )
    overlay = network.overlay

    placement = UniformPlacement(config.bounds)
    capacities = GnutellaCapacityDistribution()
    churn_rng = streams.stream("churn")
    spawn_ids = itertools.count(population)

    def spawn() -> bool:
        node = Node(
            next(spawn_ids),
            placement.sample(churn_rng),
            capacity=capacities.sample(churn_rng),
        )
        overlay.join(node)
        return True

    def remove(graceful: bool) -> bool:
        victim = overlay.random_node()
        if graceful:
            overlay.leave(victim)
        else:
            overlay.fail(victim)
        return True

    def measure_hops() -> float:
        sample_rng = streams.stream("hop-samples")
        hops: List[float] = []
        for _ in range(samples):
            source = overlay.random_node()
            target = placement.sample(sample_rng)
            hops.append(overlay.route_from(source, target).hops)
        return summarize(hops).mean

    hops_before = measure_hops()
    promotions_before = overlay.stats.promotions
    failures_before = overlay.stats.failures
    takeovers_before = overlay.stats.takeovers
    merges_before = overlay.stats.merges

    scheduler = EventScheduler()
    churn = ChurnProcess(
        scheduler,
        churn_rng,
        ChurnConfig(
            join_rate=events_per_unit / 2.0,
            leave_rate=events_per_unit / 4.0,
            fail_rate=events_per_unit / 4.0,
            min_population=max(2, population // 2),
            max_population=population * 2,
        ),
        spawn=spawn,
        remove=remove,
        population=overlay.member_count,
    )
    churn.start()
    scheduler.run_until(duration)
    churn.stop()

    overlay.check_invariants()
    failures = overlay.stats.failures - failures_before
    promotions = overlay.stats.promotions - promotions_before
    return ChurnCell(
        variant=variant,
        churn_events=churn.total_events,
        joins=churn.joins,
        departures=churn.departures,
        failures=churn.failures,
        failover_fraction=promotions / failures if failures else 0.0,
        takeovers=overlay.stats.takeovers - takeovers_before,
        merges=overlay.stats.merges - merges_before,
        hops_before=hops_before,
        hops_after=measure_hops(),
        final_population=overlay.member_count(),
    )


def run_churn_comparison(
    config: ExperimentConfig,
    population: int = 1_000,
    duration: float = 200.0,
    events_per_unit: float = 2.0,
) -> Dict[SystemVariant, ChurnCell]:
    """Basic vs dual peer under identical churn schedules."""
    return {
        variant: run_churn(
            config,
            variant=variant,
            population=population,
            duration=duration,
            events_per_unit=events_per_unit,
        )
        for variant in (SystemVariant.BASIC, SystemVariant.DUAL_PEER)
    }


def render_report(results: Dict[SystemVariant, ChurnCell]) -> str:
    """Churn-resilience comparison rows."""
    lines = [
        "Sustained churn (joins/departures/failures at Poisson rates)",
        "",
        f"{'variant':<12} {'events':>7} {'fails':>6} {'failover%':>10} "
        f"{'takeovers':>10} {'merges':>7} {'hops pre':>9} {'hops post':>10} "
        f"{'pop':>6}",
    ]
    for variant, cell in results.items():
        lines.append(
            f"{variant.value:<12} {cell.churn_events:>7} {cell.failures:>6} "
            f"{cell.failover_fraction * 100:>9.1f}% {cell.takeovers:>10} "
            f"{cell.merges:>7} {cell.hops_before:>9.1f} "
            f"{cell.hops_after:>10.1f} {cell.final_population:>6}"
        )
    return "\n".join(lines)
