"""Workload models for the GeoGrid evaluation (Section 3).

* :mod:`repro.workload.capacity` -- node capacity distributions.  The
  paper draws proxy capacities from a skewed distribution based on the
  Saroiu et al. measurement study of the Gnutella network; the exact trace
  is not available, so we ship the standard five-level approximation used
  throughout the P2P literature, plus alternatives.
* :mod:`repro.workload.placement` -- where nodes physically reside
  (uniform or clustered over the service area).
* :mod:`repro.workload.hotspot` -- circular query hot spots with linear
  fall-off (``1 - d/r``) and the epoch-based random migration model.
* :mod:`repro.workload.queries` -- location-query traffic whose spatial
  distribution follows the hot-spot field.
* :mod:`repro.workload.moving` -- moving-object position-report traffic
  for the location store (heading-following random walks with range
  lookups that track the population).
* :mod:`repro.workload.subscriptions` -- continuous-query traffic for
  the subscription plane (standing watch rectangles, lease churn, and
  geo-tagged events with a controllable in-watched-ground hit ratio).
"""

from repro.workload.capacity import (
    CapacityDistribution,
    ConstantCapacity,
    GnutellaCapacityDistribution,
    ParetoCapacityDistribution,
    UniformCapacityDistribution,
)
from repro.workload.hotspot import Hotspot, HotspotField
from repro.workload.placement import (
    ClusteredPlacement,
    PlacementDistribution,
    UniformPlacement,
)
from repro.workload.moving import MovingObjectWorkload, StepReport
from repro.workload.queries import QueryGenerator
from repro.workload.rushhour import RushHourField
from repro.workload.subscriptions import (
    PublishOp,
    SubscribeOp,
    SubscriptionWorkload,
)

__all__ = [
    "CapacityDistribution",
    "GnutellaCapacityDistribution",
    "ParetoCapacityDistribution",
    "UniformCapacityDistribution",
    "ConstantCapacity",
    "Hotspot",
    "HotspotField",
    "PlacementDistribution",
    "UniformPlacement",
    "ClusteredPlacement",
    "MovingObjectWorkload",
    "StepReport",
    "QueryGenerator",
    "RushHourField",
    "SubscribeOp",
    "PublishOp",
    "SubscriptionWorkload",
]
