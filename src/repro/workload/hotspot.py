"""Hot-spot query workload (Section 3.1).

The paper simulates uneven workload by scattering circular hot spots over
the plane: "Each hot spot is a circular area with a random initial radius
between 0.1 and 10 miles.  The cell at the center of a hot spot has the
highest normalized workload 1 and the ones on its border have workload 0.
The workloads of cells covered by the hot spot is decided by a formula
``1 - d/r``."

The timeline is divided into epochs; at the end of each, every hot spot
migrates along a randomly chosen direction at a random step size uniformly
chosen from ``(0, 2r)``.  The "moving hot spot" adaptation scenario moves
hot spots 4 to 10 steps per adaptation round.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.geometry import CellGrid, Circle, Point, Rect
from repro.core.region import Region

#: The paper's hot-spot radius range, in miles.
DEFAULT_RADIUS_RANGE: Tuple[float, float] = (0.1, 10.0)

#: Default cell side used to discretize the workload field, in miles.
DEFAULT_CELL_SIZE = 0.5


@dataclass
class Hotspot:
    """One circular hot spot with the paper's migration behavior."""

    circle: Circle

    @property
    def center(self) -> Point:
        """Current hot-spot center."""
        return self.circle.center

    @property
    def radius(self) -> float:
        """Hot-spot radius (fixed for the hot spot's lifetime)."""
        return self.circle.radius

    def migrate(self, rng: random.Random, bounds: Rect) -> None:
        """One migration step: random direction, step size U(0, 2r).

        The center is clamped back into the bounds so a hot spot can hug
        the map edge but never leaves the service area entirely.
        """
        heading = rng.uniform(0.0, 2.0 * math.pi)
        step = rng.uniform(0.0, 2.0 * self.radius)
        moved = self.center.moved_toward(heading, step)
        clamped = moved.clamped(bounds.x, bounds.y, bounds.x2, bounds.y2)
        self.circle = self.circle.moved_to(clamped)

    @classmethod
    def random(
        cls,
        rng: random.Random,
        bounds: Rect,
        radius_range: Tuple[float, float] = DEFAULT_RADIUS_RANGE,
    ) -> "Hotspot":
        """Draw a hot spot with uniform center and uniform radius."""
        lo, hi = radius_range
        if not (0 < lo <= hi):
            raise ValueError(f"invalid radius range {radius_range!r}")
        center = Point(
            rng.uniform(bounds.x, bounds.x2),
            rng.uniform(bounds.y, bounds.y2),
        )
        return cls(Circle(center, rng.uniform(lo, hi)))


class HotspotField:
    """A set of hot spots materialized onto a cell grid.

    This is the region-workload oracle of the whole evaluation:
    ``region_load(region)`` returns the total workload of the cells the
    region covers, in O(1) after each (re)materialization.

    Use :meth:`migrate` / :meth:`migrate_epoch` to move the hot spots and
    :meth:`refresh` (called automatically) to re-deposit their load.
    """

    def __init__(
        self,
        bounds: Rect,
        hotspots: Sequence[Hotspot],
        cell_size: float = DEFAULT_CELL_SIZE,
    ) -> None:
        self.bounds = bounds
        self.hotspots: List[Hotspot] = list(hotspots)
        self.grid = CellGrid(bounds, cell_size)
        self.refresh()

    @classmethod
    def random(
        cls,
        bounds: Rect,
        count: int,
        rng: random.Random,
        radius_range: Tuple[float, float] = DEFAULT_RADIUS_RANGE,
        cell_size: float = DEFAULT_CELL_SIZE,
    ) -> "HotspotField":
        """Scatter ``count`` random hot spots over ``bounds``."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        hotspots = [
            Hotspot.random(rng, bounds, radius_range) for _ in range(count)
        ]
        return cls(bounds, hotspots, cell_size=cell_size)

    @classmethod
    def flash_crowd(
        cls,
        bounds: Rect,
        rng: random.Random,
        center: Optional[Point] = None,
        burst_radius: float = 2.0,
        intensity: float = 10.0,
        ambient: int = 3,
        radius_range: Tuple[float, float] = DEFAULT_RADIUS_RANGE,
        cell_size: float = DEFAULT_CELL_SIZE,
    ) -> "HotspotField":
        """A flash-crowd field: one burst drowning out the ambient spots.

        Models a sudden regional event (a stadium letting out, breaking
        news pinned to one place): ``int(intensity)`` co-located hot
        spots of radius ``burst_radius`` stacked at ``center`` (drawn
        uniformly when ``None``), over ``ambient`` ordinary random hot
        spots.  Stacking identical circles multiplies the deposited
        load, so the burst cell workload is ~``intensity``x a single
        spot's -- the "10x ambient load at one region" knob of the
        flash-crowd chaos scenario.  The burst spots migrate like any
        others (:meth:`migrate_epoch`), which is the epoch-migration
        knob: the crowd drifts instead of dissolving.
        """
        if intensity < 1:
            raise ValueError(f"intensity must be >= 1, got {intensity}")
        if burst_radius <= 0:
            raise ValueError(
                f"burst_radius must be > 0, got {burst_radius}"
            )
        if ambient < 0:
            raise ValueError(f"ambient must be >= 0, got {ambient}")
        if center is None:
            center = Point(
                rng.uniform(bounds.x, bounds.x2),
                rng.uniform(bounds.y, bounds.y2),
            )
        burst = [
            Hotspot(Circle(center, burst_radius))
            for _ in range(int(intensity))
        ]
        scattered = [
            Hotspot.random(rng, bounds, radius_range)
            for _ in range(ambient)
        ]
        return cls(bounds, burst + scattered, cell_size=cell_size)

    def sample_point(self, rng: random.Random) -> Point:
        """Draw one query coordinate distributed like the field's load.

        Picks a hot spot uniformly (so a stacked flash-crowd burst is
        chosen in proportion to its multiplicity) and draws a point
        inside its circle, clamped to the bounds; with no hot spots the
        draw is uniform over the plane.  Drives storm traffic in the
        flash-crowd scenario without consulting the cell grid.
        """
        bounds = self.bounds
        if not self.hotspots:
            return Point(
                rng.uniform(bounds.x, bounds.x2),
                rng.uniform(bounds.y, bounds.y2),
            )
        hotspot = rng.choice(self.hotspots)
        heading = rng.uniform(0.0, 2.0 * math.pi)
        distance = hotspot.radius * math.sqrt(rng.random())
        point = hotspot.center.moved_toward(heading, distance)
        return point.clamped(bounds.x, bounds.y, bounds.x2, bounds.y2)

    # ------------------------------------------------------------------
    # Workload queries
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Re-deposit every hot spot's load onto the grid."""
        self.grid.clear()
        for hotspot in self.hotspots:
            self.grid.add_hotspot(hotspot.circle)

    def region_load(self, region: Region) -> float:
        """Total query workload mapped to ``region`` (O(1))."""
        return self.grid.load_in_rect(region.rect)

    def rect_load(self, rect: Rect) -> float:
        """Total query workload inside an arbitrary rectangle."""
        return self.grid.load_in_rect(rect)

    @property
    def total_load(self) -> float:
        """Total workload over the whole plane."""
        return self.grid.total_load

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def migrate(self, rng: random.Random, steps: int = 1) -> None:
        """Move every hot spot ``steps`` times, then refresh the grid.

        One call with ``steps=1`` is the end-of-epoch migration; the
        "moving hot spot" scenario calls this with ``steps`` in 4..10 per
        adaptation round.
        """
        if steps < 0:
            raise ValueError(f"steps must be >= 0, got {steps}")
        for _ in range(steps):
            for hotspot in self.hotspots:
                hotspot.migrate(rng, self.bounds)
        if steps:
            self.refresh()

    def migrate_epoch(
        self,
        rng: random.Random,
        steps_range: Tuple[int, int] = (4, 10),
    ) -> int:
        """Migrate a random number of steps in ``steps_range`` (inclusive).

        Returns the number of steps taken.
        """
        lo, hi = steps_range
        if not (0 <= lo <= hi):
            raise ValueError(f"invalid steps range {steps_range!r}")
        steps = rng.randint(lo, hi)
        self.migrate(rng, steps)
        return steps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HotspotField(hotspots={len(self.hotspots)}, "
            f"total_load={self.total_load:.1f})"
        )
