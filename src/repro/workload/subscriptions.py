"""Continuous-query traffic for the subscription plane.

The paper's standing queries -- "inform me of the traffic around Exit 89
in the next 30 minutes" (Section 2.2) -- mix three behaviours: clients
registering watch rectangles, leases being renewed or allowed to lapse,
and geo-tagged events being published (some inside watched ground, most
not).  :class:`SubscriptionWorkload` models that mix, engine-agnostic:
it yields :class:`SubscribeOp` / :class:`PublishOp` values describing
*what happens* and leaves delivery to the caller, so the same seeded
trace drives the protocol bench, the chaos campaign, and the
differential test against the model-layer oracle.

Publish targeting is explicit: each publish step lands a configurable
fraction of events *inside* a currently-watched rectangle (guaranteeing
matches to assert on) and scatters the rest uniformly (exercising the
no-match fast path).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.geometry import Point, Rect

__all__ = ["SubscribeOp", "PublishOp", "SubscriptionWorkload"]


@dataclass(frozen=True)
class SubscribeOp:
    """One subscription to register: a watch rectangle and its lease."""

    #: Stable workload-assigned identity (callers may pass it through as
    #: the protocol ``sub_id`` or map it to their own).
    name: str
    rect: Rect
    duration: float
    #: Index of the subscribing client in ``0..subscriber_count-1``.
    subscriber: int


@dataclass(frozen=True)
class PublishOp:
    """One geo-tagged event to publish."""

    point: Point
    payload: Any
    #: Index of the publishing client in ``0..subscriber_count-1``.
    publisher: int
    #: Whether the point was deliberately aimed inside a watched rect.
    targeted: bool


class SubscriptionWorkload:
    """A seeded population of continuous queries plus event traffic.

    Parameters
    ----------
    bounds:
        The service area; all rects and event points fall inside it.
    subscriptions:
        Number of standing queries registered by :meth:`initial_subscriptions`.
    subscriber_count:
        Number of distinct clients the ops are spread across.
    rng:
        Source of randomness (the trace is deterministic per seed).
    rect_extent:
        ``(min, max)`` side length of watch rectangles, drawn uniformly.
    duration:
        Lease length handed to every subscription.
    hit_ratio:
        Fraction of published events aimed inside a watched rectangle.
    """

    def __init__(
        self,
        bounds: Rect,
        subscriptions: int,
        rng: random.Random,
        subscriber_count: int = 4,
        rect_extent: tuple = (4.0, 12.0),
        duration: float = 600.0,
        hit_ratio: float = 0.5,
    ) -> None:
        if subscriptions <= 0:
            raise ValueError(
                f"subscriptions must be positive, got {subscriptions}"
            )
        if subscriber_count <= 0:
            raise ValueError(
                f"subscriber_count must be positive, got {subscriber_count}"
            )
        lo, hi = rect_extent
        if not (0 < lo <= hi):
            raise ValueError(f"invalid rect extent {rect_extent!r}")
        if not (0.0 <= hit_ratio <= 1.0):
            raise ValueError(f"hit_ratio must be in [0, 1], got {hit_ratio}")
        self.bounds = bounds
        self.rng = rng
        self.subscriber_count = subscriber_count
        self.rect_extent = rect_extent
        self.duration = duration
        self.hit_ratio = hit_ratio
        self._target = subscriptions
        self._seq = 0
        self._events = 0
        #: Rects currently considered live by the workload (the caller's
        #: engine owns actual lease expiry; this is the targeting pool).
        self.live: List[SubscribeOp] = []

    # ------------------------------------------------------------------
    # Subscription side
    # ------------------------------------------------------------------
    def _fresh_subscription(self) -> SubscribeOp:
        lo, hi = self.rect_extent
        width = self.rng.uniform(lo, hi)
        height = self.rng.uniform(lo, hi)
        x = self.rng.uniform(self.bounds.x, self.bounds.x2 - width)
        y = self.rng.uniform(self.bounds.y, self.bounds.y2 - height)
        op = SubscribeOp(
            name=f"sub{self._seq}",
            rect=Rect(x, y, width, height),
            duration=self.duration,
            subscriber=self._seq % self.subscriber_count,
        )
        self._seq += 1
        return op

    def initial_subscriptions(self) -> List[SubscribeOp]:
        """The standing-query population, registered up front."""
        fresh = [self._fresh_subscription() for _ in range(self._target)]
        self.live.extend(fresh)
        return fresh

    def churn_step(self, replace: int = 1) -> List[SubscribeOp]:
        """Drop the oldest ``replace`` queries and register replacements.

        The dropped queries simply stop being targeted (their leases are
        left to lapse at the engine); the replacements keep the live
        population at its configured size.
        """
        del self.live[:replace]
        fresh = [self._fresh_subscription() for _ in range(replace)]
        self.live.extend(fresh)
        return fresh

    # ------------------------------------------------------------------
    # Event side
    # ------------------------------------------------------------------
    def publish_step(self, count: int = 1) -> List[PublishOp]:
        """``count`` events: ``hit_ratio`` of them inside watched ground."""
        ops = []
        for _ in range(count):
            targeted = bool(self.live) and (
                self.rng.random() < self.hit_ratio
            )
            if targeted:
                rect = self.rng.choice(self.live).rect
                point = Point(
                    self.rng.uniform(rect.x, rect.x2),
                    self.rng.uniform(rect.y, rect.y2),
                )
            else:
                point = Point(
                    self.rng.uniform(self.bounds.x, self.bounds.x2),
                    self.rng.uniform(self.bounds.y, self.bounds.y2),
                )
            ops.append(
                PublishOp(
                    point=point,
                    payload=f"event{self._events}",
                    publisher=self._events % self.subscriber_count,
                    targeted=targeted,
                )
            )
            self._events += 1
        return ops

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SubscriptionWorkload(live={len(self.live)}, "
            f"events={self._events}, bounds={self.bounds})"
        )
