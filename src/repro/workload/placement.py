"""Spatial distributions of node coordinates.

GeoGrid nodes map themselves to the region covering their physical
coordinate, so *where* nodes sit shapes the partition.  The paper's
experiments place end users randomly over the 64 mi x 64 mi area; we also
provide a clustered (Gaussian-mixture) placement to model metropolitan
population concentration, which the paper's load-balance discussion
motivates ("unbalanced concentration of nodes in some regions").
"""

from __future__ import annotations

import random
from typing import List, Optional, Protocol, Sequence

from repro.geometry import Point, Rect


class PlacementDistribution(Protocol):
    """Anything that can draw node coordinates inside a service area."""

    def sample(self, rng: random.Random) -> Point:
        """Draw one coordinate strictly inside the bounds."""
        ...


class UniformPlacement:
    """Coordinates uniform over the service area."""

    def __init__(self, bounds: Rect) -> None:
        self.bounds = bounds

    def sample(self, rng: random.Random) -> Point:
        """Draw a uniform point, avoiding the degenerate low edges."""
        x = rng.uniform(self.bounds.x, self.bounds.x2)
        y = rng.uniform(self.bounds.y, self.bounds.y2)
        # The paper's coverage predicate is open at the low edge; nudge a
        # point that lands exactly there (probability ~0, but be exact).
        if x == self.bounds.x:
            x = self.bounds.x + self.bounds.width * 1e-12
        if y == self.bounds.y:
            y = self.bounds.y + self.bounds.height * 1e-12
        return Point(x, y)


class ClusteredPlacement:
    """A Gaussian mixture: most nodes near a few population centers.

    Parameters
    ----------
    bounds:
        The service area.
    centers:
        Cluster centers; when omitted, ``cluster_count`` centers are drawn
        uniformly the first time :meth:`sample` is called.
    sigma:
        Standard deviation of each cluster, as a fraction of the shorter
        bounds side (default 0.08, i.e. ~5 mi clusters on the 64 mi map).
    background_fraction:
        Fraction of nodes placed uniformly instead of near a cluster.
    """

    def __init__(
        self,
        bounds: Rect,
        centers: Optional[Sequence[Point]] = None,
        cluster_count: int = 5,
        sigma: float = 0.08,
        background_fraction: float = 0.1,
    ) -> None:
        if cluster_count < 1:
            raise ValueError(f"cluster_count must be >= 1, got {cluster_count}")
        if not (0.0 <= background_fraction <= 1.0):
            raise ValueError(
                f"background_fraction must lie in [0, 1], got "
                f"{background_fraction!r}"
            )
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma!r}")
        self.bounds = bounds
        self.cluster_count = cluster_count
        self.sigma_miles = sigma * min(bounds.width, bounds.height)
        self.background_fraction = background_fraction
        self._uniform = UniformPlacement(bounds)
        self._centers: Optional[List[Point]] = (
            list(centers) if centers is not None else None
        )

    def centers(self, rng: random.Random) -> List[Point]:
        """The cluster centers (drawn lazily on first use)."""
        if self._centers is None:
            self._centers = [
                self._uniform.sample(rng) for _ in range(self.cluster_count)
            ]
        return self._centers

    def sample(self, rng: random.Random) -> Point:
        """Draw one coordinate: clustered with prob. 1 - background."""
        if rng.random() < self.background_fraction:
            return self._uniform.sample(rng)
        center = rng.choice(self.centers(rng))
        for _ in range(64):
            candidate = Point(
                rng.gauss(center.x, self.sigma_miles),
                rng.gauss(center.y, self.sigma_miles),
            )
            if self.bounds.covers(candidate):
                return candidate
        # A cluster hugging the map edge can reject many draws; clamp the
        # last candidate strictly inside rather than loop forever.
        inset = min(self.bounds.width, self.bounds.height) * 1e-9
        return candidate.clamped(
            self.bounds.x + inset,
            self.bounds.y + inset,
            self.bounds.x2,
            self.bounds.y2,
        )
