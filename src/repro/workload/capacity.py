"""Node capacity distributions.

The paper: "The capacities of those proxies follow a skewed distribution
based on a measurement study of Gnutella P2P network [12]" (Saroiu,
Gummadi, Gribble, MMCN 2002).  The raw trace is not public, so the default
here is the five-level approximation of that study that the P2P load
balancing literature standardized on: capacities spanning four orders of
magnitude, with the vast majority of nodes at the low end.

All distributions sample via an explicitly passed ``random.Random`` so
experiments are reproducible.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Protocol, Sequence, Tuple


class CapacityDistribution(Protocol):
    """Anything that can draw node capacities."""

    def sample(self, rng: random.Random) -> float:
        """Draw one capacity value (> 0)."""
        ...


class GnutellaCapacityDistribution:
    """The skewed five-level Gnutella-derived capacity profile.

    Levels and probabilities (capacity : fraction of nodes):

    ==========  ==========
    capacity    fraction
    ==========  ==========
    1           20%
    10          45%
    100         30%
    1000        4.9%
    10000       0.1%
    ==========  ==========

    This mirrors the heterogeneity the paper leans on: a small number of
    very powerful proxies and a long tail of weak ones.
    """

    DEFAULT_LEVELS: Tuple[float, ...] = (1.0, 10.0, 100.0, 1000.0, 10000.0)
    DEFAULT_WEIGHTS: Tuple[float, ...] = (0.20, 0.45, 0.30, 0.049, 0.001)

    def __init__(
        self,
        levels: Sequence[float] = DEFAULT_LEVELS,
        weights: Sequence[float] = DEFAULT_WEIGHTS,
    ) -> None:
        if len(levels) != len(weights):
            raise ValueError(
                f"levels and weights must have equal length, got "
                f"{len(levels)} and {len(weights)}"
            )
        if not levels:
            raise ValueError("at least one capacity level is required")
        if any(level <= 0 for level in levels):
            raise ValueError("capacity levels must be positive")
        if any(weight < 0 for weight in weights):
            raise ValueError("weights must be non-negative")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must not sum to zero")
        self.levels: List[float] = [float(level) for level in levels]
        self._cumulative: List[float] = list(
            itertools.accumulate(weight / total for weight in weights)
        )

    def sample(self, rng: random.Random) -> float:
        """Draw one capacity from the discrete profile."""
        u = rng.random()
        index = bisect.bisect_left(self._cumulative, u)
        index = min(index, len(self.levels) - 1)
        return self.levels[index]


class ParetoCapacityDistribution:
    """Heavy-tailed continuous alternative: ``minimum / U^(1/alpha)``.

    Useful for sensitivity analyses: the adaptation mechanisms should keep
    working when capacities are continuous rather than five discrete
    levels.
    """

    def __init__(self, alpha: float = 1.2, minimum: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha!r}")
        if minimum <= 0:
            raise ValueError(f"minimum must be positive, got {minimum!r}")
        self.alpha = alpha
        self.minimum = minimum

    def sample(self, rng: random.Random) -> float:
        """Draw one Pareto(alpha) capacity."""
        u = rng.random()
        # Guard the open interval: u == 0 would yield infinity.
        while u == 0.0:
            u = rng.random()
        return self.minimum / (u ** (1.0 / self.alpha))


class UniformCapacityDistribution:
    """Capacities uniform over ``[low, high]`` (mild heterogeneity)."""

    def __init__(self, low: float = 1.0, high: float = 100.0) -> None:
        if low <= 0 or high < low:
            raise ValueError(
                f"need 0 < low <= high, got low={low!r} high={high!r}"
            )
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        """Draw one uniform capacity."""
        return rng.uniform(self.low, self.high)


class ConstantCapacity:
    """Every node has the same capacity (the homogeneous baseline)."""

    def __init__(self, value: float = 1.0) -> None:
        if value <= 0:
            raise ValueError(f"value must be positive, got {value!r}")
        self.value = value

    def sample(self, rng: random.Random) -> float:
        """Return the constant capacity."""
        return self.value
