"""Moving-object traffic for the location store.

The store's whole reason to exist is absorbing position reports from a
large population of *moving* objects -- vehicles, phones, assets --
interleaved with range lookups asking "who is near here right now?".
This module models that population: each object walks the service area
along a heading (with occasional turns, bouncing off the bounds) and
reports its position every step, so consecutive updates are spatially
correlated and routinely cross region boundaries -- the case that
exercises the store's cross-region eviction path.

:class:`MovingObjectWorkload` is deliberately engine-agnostic: it yields
:class:`StepReport` values describing *what happened* (object, old
position, new position, version) and leaves delivery to the caller, so
the same trajectory stream drives the overlay-model bench and the
message-level protocol tests.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.geometry import Point, Rect

__all__ = ["MovingObjectWorkload", "StepReport"]


@dataclass(frozen=True)
class StepReport:
    """One object's position report after a movement step."""

    object_id: str
    point: Point
    prev_point: Optional[Point]
    version: int


class MovingObjectWorkload:
    """A population of objects random-walking the service area.

    Parameters
    ----------
    bounds:
        The service area; objects bounce off its edges.
    population:
        Number of moving objects.
    rng:
        Source of randomness (trajectories are deterministic per seed).
    speed_range:
        Distance an object covers per step, drawn uniformly per object
        (objects have stable speeds, like real vehicles).
    turn_sigma:
        Standard deviation of the per-step heading perturbation in
        radians -- small values give smooth, road-like trajectories.
    """

    def __init__(
        self,
        bounds: Rect,
        population: int,
        rng: random.Random,
        speed_range: tuple = (0.2, 1.5),
        turn_sigma: float = 0.35,
    ) -> None:
        if population <= 0:
            raise ValueError(f"population must be positive, got {population}")
        lo, hi = speed_range
        if not (0 < lo <= hi):
            raise ValueError(f"invalid speed range {speed_range!r}")
        self.bounds = bounds
        self.rng = rng
        self.turn_sigma = turn_sigma
        self._positions: Dict[str, Point] = {}
        self._headings: Dict[str, float] = {}
        self._speeds: Dict[str, float] = {}
        self._versions: Dict[str, int] = {}
        for index in range(population):
            object_id = f"mob{index}"
            self._positions[object_id] = Point(
                rng.uniform(bounds.x, bounds.x2),
                rng.uniform(bounds.y, bounds.y2),
            )
            self._headings[object_id] = rng.uniform(0.0, 2.0 * math.pi)
            self._speeds[object_id] = rng.uniform(lo, hi)
            self._versions[object_id] = 0

    # ------------------------------------------------------------------
    # Population views
    # ------------------------------------------------------------------
    @property
    def population(self) -> int:
        """Number of objects in the workload."""
        return len(self._positions)

    def position_of(self, object_id: str) -> Point:
        """The object's current (last reported) position."""
        return self._positions[object_id]

    def version_of(self, object_id: str) -> int:
        """The object's current report version."""
        return self._versions[object_id]

    def object_ids(self) -> List[str]:
        """All object identifiers, in stable order."""
        return list(self._positions)

    # ------------------------------------------------------------------
    # Movement
    # ------------------------------------------------------------------
    def initial_reports(self) -> Iterator[StepReport]:
        """Version-1 reports placing every object at its start position."""
        for object_id in self._positions:
            self._versions[object_id] = 1
            yield StepReport(
                object_id=object_id,
                point=self._positions[object_id],
                prev_point=None,
                version=1,
            )

    def step(self) -> Iterator[StepReport]:
        """Advance every object one step and yield its position report."""
        for object_id in self._positions:
            yield self.step_one(object_id)

    def step_one(self, object_id: str) -> StepReport:
        """Advance a single object along its (slightly turned) heading."""
        heading = self._headings[object_id] + self.rng.gauss(
            0.0, self.turn_sigma
        )
        prev = self._positions[object_id]
        moved = prev.moved_toward(heading, self._speeds[object_id])
        if not self.bounds.covers(moved, closed_low_x=True, closed_low_y=True):
            # Bounce: turn back toward the middle of the plane.
            center = self.bounds.center
            heading = math.atan2(center.y - prev.y, center.x - prev.x)
            moved = prev.moved_toward(heading, self._speeds[object_id])
        moved = moved.clamped(
            self.bounds.x, self.bounds.y, self.bounds.x2, self.bounds.y2
        )
        self._headings[object_id] = heading
        self._positions[object_id] = moved
        self._versions[object_id] += 1
        return StepReport(
            object_id=object_id,
            point=moved,
            prev_point=prev,
            version=self._versions[object_id],
        )

    def lookup_rect(self, radius: float = 2.0) -> Rect:
        """A range-lookup rectangle around a random object's position.

        Lookups follow the population (asking where the objects are), so
        the update:lookup mix concentrates on occupied territory.
        """
        anchor = self._positions[self.rng.choice(list(self._positions))]
        west = max(self.bounds.x, anchor.x - radius)
        south = max(self.bounds.y, anchor.y - radius)
        east = min(self.bounds.x2, anchor.x + radius)
        north = min(self.bounds.y2, anchor.y + radius)
        return Rect(west, south, east - west, north - south)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MovingObjectWorkload(population={self.population}, "
            f"bounds={self.bounds})"
        )
