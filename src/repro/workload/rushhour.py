"""Rush-hour workload: directionally drifting hot spots.

The paper's motivation (Section 2): "The highway system in a metropolitan
area is usually heavily loaded during the rush hours.  In the morning,
the highways leading in town are usually crowded, while the out-town
routes are heavily loaded in the afternoon."

:class:`RushHourField` specializes the hot-spot field with *directional*
migration: during the morning phase every hot spot drifts toward a
downtown point; during the afternoon phase it drifts away.  A jitter
angle keeps the motion from being perfectly straight.  This is a harder
scenario than the paper's random walk -- the load keeps marching through
fresh territory in a correlated direction -- and the adaptation engine is
benchmarked against it in the ablation tests.
"""

from __future__ import annotations

import math
import random
from typing import Sequence, Tuple

from repro.geometry import Point, Rect
from repro.workload.hotspot import (
    DEFAULT_CELL_SIZE,
    DEFAULT_RADIUS_RANGE,
    Hotspot,
    HotspotField,
)


class RushHourField(HotspotField):
    """Hot spots drifting toward (morning) or away from (afternoon) town.

    Parameters
    ----------
    downtown:
        The attraction point; defaults to the center of the bounds.
    jitter_radians:
        Uniform angular noise added to the drift heading per step.
    """

    def __init__(
        self,
        bounds: Rect,
        hotspots: Sequence[Hotspot],
        downtown: Point = None,
        jitter_radians: float = math.pi / 6,
        cell_size: float = DEFAULT_CELL_SIZE,
    ) -> None:
        if jitter_radians < 0:
            raise ValueError(
                f"jitter_radians must be >= 0, got {jitter_radians!r}"
            )
        self.downtown = downtown if downtown is not None else bounds.center
        self.jitter_radians = jitter_radians
        #: "morning" drifts toward downtown, "afternoon" away from it.
        self.phase = "morning"
        super().__init__(bounds, hotspots, cell_size=cell_size)

    @classmethod
    def random(
        cls,
        bounds: Rect,
        count: int,
        rng: random.Random,
        radius_range: Tuple[float, float] = DEFAULT_RADIUS_RANGE,
        cell_size: float = DEFAULT_CELL_SIZE,
        downtown: Point = None,
        jitter_radians: float = math.pi / 6,
    ) -> "RushHourField":
        """Scatter ``count`` random hot spots with rush-hour dynamics."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        hotspots = [
            Hotspot.random(rng, bounds, radius_range) for _ in range(count)
        ]
        return cls(
            bounds, hotspots, downtown=downtown,
            jitter_radians=jitter_radians, cell_size=cell_size,
        )

    def set_phase(self, phase: str) -> None:
        """Switch between ``"morning"`` (inbound) and ``"afternoon"``."""
        if phase not in ("morning", "afternoon"):
            raise ValueError(f"unknown phase {phase!r}")
        self.phase = phase

    def migrate(self, rng: random.Random, steps: int = 1) -> None:
        """Directional drift instead of the base class's random walk.

        Step sizes follow the paper's U(0, 2r) rule; only the heading is
        biased: toward downtown in the morning, away in the afternoon,
        plus uniform jitter of ``+- jitter_radians``.
        """
        if steps < 0:
            raise ValueError(f"steps must be >= 0, got {steps}")
        for _ in range(steps):
            for hotspot in self.hotspots:
                heading = math.atan2(
                    self.downtown.y - hotspot.center.y,
                    self.downtown.x - hotspot.center.x,
                )
                if self.phase == "afternoon":
                    heading += math.pi
                heading += rng.uniform(
                    -self.jitter_radians, self.jitter_radians
                )
                step = rng.uniform(0.0, 2.0 * hotspot.radius)
                moved = hotspot.center.moved_toward(heading, step)
                clamped = moved.clamped(
                    self.bounds.x, self.bounds.y,
                    self.bounds.x2, self.bounds.y2,
                )
                hotspot.circle = hotspot.circle.moved_to(clamped)
        if steps:
            self.refresh()

    def mean_distance_to_downtown(self) -> float:
        """Average hot-spot distance to the attraction point."""
        if not self.hotspots:
            return 0.0
        return sum(
            hotspot.center.distance_to(self.downtown)
            for hotspot in self.hotspots
        ) / len(self.hotspots)
