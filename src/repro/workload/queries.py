"""Location-query traffic generation.

Turns the hot-spot field into an actual stream of
:class:`~repro.core.query.LocationQuery` objects: query centers are drawn
proportionally to the cell workload (queries concentrate on hot spots, the
paper's Super-Bowl-parking intuition), with a configurable uniform
background fraction for everyday traffic.

Used by the routing-workload experiments and the example applications.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.geometry import Point
from repro.core.node import Node
from repro.core.query import LocationQuery
from repro.workload.hotspot import HotspotField


class QueryGenerator:
    """Draws location queries whose spatial density follows the hot spots.

    Parameters
    ----------
    field:
        The hot-spot field defining the spatial query density.
    radius_range:
        Query radius range in miles; each query asks about a circular area
        (submitted as its bounding rectangle, per the paper).
    background_fraction:
        Fraction of queries drawn uniformly over the plane instead of from
        the hot-spot density (also the fallback when the field is empty).
    """

    def __init__(
        self,
        field: HotspotField,
        radius_range: Tuple[float, float] = (0.25, 2.0),
        background_fraction: float = 0.1,
    ) -> None:
        lo, hi = radius_range
        if not (0 < lo <= hi):
            raise ValueError(f"invalid radius range {radius_range!r}")
        if not (0.0 <= background_fraction <= 1.0):
            raise ValueError(
                f"background_fraction must lie in [0, 1], got "
                f"{background_fraction!r}"
            )
        self.field = field
        self.radius_range = radius_range
        self.background_fraction = background_fraction
        self._cumulative: Optional[np.ndarray] = None
        self._cumulative_version: Optional[int] = None

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_center(self, rng: random.Random) -> Point:
        """Draw a query center (load-proportional or uniform background)."""
        bounds = self.field.bounds
        weights = self._weights()
        if weights is None or rng.random() < self.background_fraction:
            return Point(
                rng.uniform(bounds.x, bounds.x2),
                rng.uniform(bounds.y, bounds.y2),
            )
        u = rng.random() * weights[-1]
        flat_index = int(np.searchsorted(weights, u, side="right"))
        flat_index = min(flat_index, weights.shape[0] - 1)
        grid = self.field.grid
        ix, iy = divmod(flat_index, grid.ny)
        cell_center = grid.cell_center(ix, iy)
        # Jitter uniformly within the cell so queries are not lattice-bound.
        half = grid.cell_size / 2.0
        jittered = Point(
            cell_center.x + rng.uniform(-half, half),
            cell_center.y + rng.uniform(-half, half),
        )
        return jittered.clamped(bounds.x, bounds.y, bounds.x2, bounds.y2)

    def sample_query(self, focal: Node, rng: random.Random) -> LocationQuery:
        """Draw one full location query on behalf of ``focal``."""
        center = self.sample_center(rng)
        radius = rng.uniform(*self.radius_range)
        return LocationQuery.around(center, radius, focal=focal)

    def stream(
        self,
        focal_picker,
        rng: random.Random,
        count: int,
    ) -> Iterator[LocationQuery]:
        """Yield ``count`` queries; ``focal_picker()`` supplies focal nodes."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        for _ in range(count):
            yield self.sample_query(focal_picker(), rng)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _weights(self) -> Optional[np.ndarray]:
        """Flattened cumulative cell loads; None when the field is empty."""
        version = id(self.field.grid.loads) ^ hash(self.field.total_load)
        if self._cumulative is None or self._cumulative_version != version:
            flat = self.field.grid.loads.reshape(-1)
            if flat.sum() <= 0.0:
                self._cumulative = None
            else:
                self._cumulative = np.cumsum(flat)
            self._cumulative_version = version
        return self._cumulative
