"""Time-series recording for the convergence experiments.

Figures 7/8 record the workload-index summary at the end of every round of
adaptation; Figures 9/10 record it after every individual adaptation.  The
collector is agnostic: it stores ``(x, StatSummary)`` points under named
series and renders plain-text tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.metrics.stats import StatSummary


@dataclass(frozen=True)
class SeriesPoint:
    """One recorded point: x-coordinate plus the summary at that moment."""

    x: float
    summary: StatSummary


@dataclass
class TimeSeriesCollector:
    """Named series of :class:`SeriesPoint` values."""

    series: Dict[str, List[SeriesPoint]] = field(default_factory=dict)

    def record(self, name: str, x: float, summary: StatSummary) -> None:
        """Append one point to series ``name``."""
        self.series.setdefault(name, []).append(SeriesPoint(x, summary))

    def get(self, name: str) -> List[SeriesPoint]:
        """All points of series ``name`` (empty when never recorded)."""
        return self.series.get(name, [])

    def names(self) -> List[str]:
        """The recorded series names, in insertion order."""
        return list(self.series)

    def column(self, name: str, attribute: str) -> List[Tuple[float, float]]:
        """Extract ``(x, summary.<attribute>)`` pairs from a series."""
        return [
            (point.x, getattr(point.summary, attribute))
            for point in self.get(name)
        ]

    def render_table(
        self,
        attribute: str,
        names: Iterable[str] = (),
        x_label: str = "x",
        float_format: str = "{:.6g}",
    ) -> str:
        """Render selected series as an aligned text table.

        One row per distinct x value, one column per series; missing points
        render as ``-``.  This is what the benchmark harness prints as the
        "same rows/series the paper reports".
        """
        chosen = list(names) or self.names()
        xs = sorted(
            {point.x for name in chosen for point in self.get(name)}
        )
        by_series = {
            name: {point.x: getattr(point.summary, attribute)
                   for point in self.get(name)}
            for name in chosen
        }
        header = [x_label] + chosen
        rows = [header]
        for x in xs:
            row = [f"{x:g}"]
            for name in chosen:
                value = by_series[name].get(x)
                row.append("-" if value is None else float_format.format(value))
            rows.append(row)
        widths = [
            max(len(row[column]) for row in rows)
            for column in range(len(header))
        ]
        lines = []
        for index, row in enumerate(rows):
            lines.append(
                "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        return "\n".join(lines)
