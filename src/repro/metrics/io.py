"""JSON import/export of measurement results.

The benchmark harness prints text tables; downstream users who want to
plot the series (matplotlib, gnuplot, a notebook) can round-trip the
collectors through JSON instead of scraping text.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.metrics.collector import TimeSeriesCollector
from repro.metrics.stats import StatSummary


def summary_to_dict(summary: StatSummary) -> Dict[str, Any]:
    """A JSON-ready dict for one :class:`StatSummary`."""
    return summary.as_dict()


def summary_from_dict(data: Dict[str, Any]) -> StatSummary:
    """Rebuild a :class:`StatSummary` from :func:`summary_to_dict`."""
    return StatSummary(
        count=int(data["count"]),
        minimum=float(data["min"]),
        maximum=float(data["max"]),
        mean=float(data["mean"]),
        std=float(data["std"]),
        median=float(data["median"]),
        total=float(data["total"]),
    )


def collector_to_json(collector: TimeSeriesCollector, indent: int = 2) -> str:
    """Serialize all series of a collector to a JSON string."""
    payload = {
        name: [
            {"x": point.x, "summary": summary_to_dict(point.summary)}
            for point in collector.get(name)
        ]
        for name in collector.names()
    }
    # Insertion order is part of the collector's contract (series render
    # in recording order), so keys are deliberately not sorted.
    return json.dumps(payload, indent=indent)


def collector_from_json(text: str) -> TimeSeriesCollector:
    """Rebuild a collector from :func:`collector_to_json` output."""
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError("expected a JSON object of series")
    collector = TimeSeriesCollector()
    for name, points in payload.items():
        for entry in points:
            collector.record(
                name,
                float(entry["x"]),
                summary_from_dict(entry["summary"]),
            )
    return collector
