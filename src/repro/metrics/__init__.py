"""Measurement utilities.

The paper reports the max, mean, and standard deviation of the *workload
index* over all nodes; this package provides the generic statistics
(:func:`summarize`, :class:`StatSummary`), inequality measures, and the
time-series collector the convergence experiments use to record one
summary per adaptation round (or per individual adaptation).
"""

from repro.metrics.stats import StatSummary, gini, summarize
from repro.metrics.collector import SeriesPoint, TimeSeriesCollector
from repro.metrics.io import (
    collector_from_json,
    collector_to_json,
    summary_from_dict,
    summary_to_dict,
)

__all__ = [
    "StatSummary",
    "summarize",
    "gini",
    "TimeSeriesCollector",
    "SeriesPoint",
    "collector_to_json",
    "collector_from_json",
    "summary_to_dict",
    "summary_from_dict",
]
