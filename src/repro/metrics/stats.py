"""Summary statistics over node workload indices (and anything else)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence


@dataclass(frozen=True)
class StatSummary:
    """Max / mean / std (and friends) of a sample.

    ``std`` is the population standard deviation, matching how the paper
    summarizes the workload index over *all* nodes of a network (the whole
    population is observed, nothing is estimated).
    """

    count: int
    minimum: float
    maximum: float
    mean: float
    std: float
    median: float
    total: float

    @classmethod
    def empty(cls) -> "StatSummary":
        """The summary of an empty sample (all-zero)."""
        return cls(
            count=0, minimum=0.0, maximum=0.0, mean=0.0,
            std=0.0, median=0.0, total=0.0,
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for table rendering."""
        return {
            "count": self.count,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "std": self.std,
            "median": self.median,
            "total": self.total,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} max={self.maximum:.4g} mean={self.mean:.4g} "
            f"std={self.std:.4g}"
        )


def summarize(values: Iterable[float]) -> StatSummary:
    """Compute a :class:`StatSummary` over ``values``."""
    data: List[float] = sorted(float(v) for v in values)
    if not data:
        return StatSummary.empty()
    count = len(data)
    total = math.fsum(data)
    # fsum/count can land one ulp outside [min, max] for near-identical
    # samples; clamp so min <= mean <= max always holds exactly.
    mean = min(max(total / count, data[0]), data[-1])
    variance = math.fsum((v - mean) ** 2 for v in data) / count
    middle = count // 2
    if count % 2:
        median = data[middle]
    else:
        median = (data[middle - 1] + data[middle]) / 2.0
    return StatSummary(
        count=count,
        minimum=data[0],
        maximum=data[-1],
        mean=mean,
        std=math.sqrt(variance),
        median=median,
        total=total,
    )


def gini(values: Sequence[float]) -> float:
    """The Gini coefficient of a non-negative sample (0 = perfectly even).

    A single-number inequality measure we report alongside the paper's
    max/mean/std; handy for the ablation benchmarks.
    """
    data = sorted(float(v) for v in values)
    if not data:
        return 0.0
    if any(v < 0 for v in data):
        raise ValueError("gini is only defined for non-negative samples")
    total = math.fsum(data)
    if total == 0.0:
        return 0.0
    n = len(data)
    weighted = math.fsum((index + 1) * value for index, value in enumerate(data))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


def confidence_interval95(values: Sequence[float]) -> float:
    """Half-width of a normal-approximation 95% CI for the mean.

    With the reduced trial counts this reproduction runs (the paper
    averaged 100 networks per point), reports should say how tight the
    averages are; this returns ``1.96 * s / sqrt(n)`` using the sample
    standard deviation (0 for n < 2).
    """
    data = [float(v) for v in values]
    n = len(data)
    if n < 2:
        return 0.0
    mean = math.fsum(data) / n
    sample_variance = math.fsum((v - mean) ** 2 for v in data) / (n - 1)
    return 1.96 * math.sqrt(sample_variance / n)


def ratio_of_maximum_to_mean(values: Sequence[float]) -> float:
    """Peak-to-average ratio, a common overload indicator (1 = flat)."""
    summary = summarize(values)
    if summary.mean == 0.0:
        return 0.0
    return summary.maximum / summary.mean
