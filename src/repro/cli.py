"""Command-line interface: regenerate any figure without pytest.

Usage::

    python -m repro list
    python -m repro fig5-6 --trials 3
    python -m repro fig7-8 --rounds 25
    python -m repro all --out results/
    python -m repro bench
    python -m repro bench store
    python -m repro bench telemetry
    python -m repro bench pubsub --smoke
    python -m repro routing --metrics
    python -m repro flightrec --demo
    python -m repro flightrec journal.jsonl --around 103.8 --window 5
    python -m repro chaos
    python -m repro chaos --scenario crash_restart --seed 11
    python -m repro chaos --metrics
    python -m repro top --once
    python -m repro export --out results/

Each command builds the experiment at paper scale (tunable), prints the
paper-style table, and optionally writes it under ``--out``.  ``bench``
writes the machine-readable ``BENCH_micro_ops.json`` / ``BENCH_routing.json``
snapshots (see :mod:`repro.obs.bench`); ``--metrics`` runs any command
under a live metrics registry and dumps it as JSON afterwards.

``flightrec`` is the flight-recorder inspector: it filters and
pretty-prints a journal written by
:meth:`repro.obs.flightrec.FlightRecorder.dump_jsonl` (or, with
``--demo``, replays the double hole-grant split brain under fault injection and
prints the auditor's forensics dump).  It takes its own options, so it is
parsed separately from the figure commands.

``chaos`` runs the seeded fault campaign of :mod:`repro.sim.chaos`
against the message-level protocol and writes ``BENCH_chaos.json``; it
exits non-zero when any scenario leaves a persistent invariant
violation or loses a stored object.  Like ``flightrec`` it owns its
option set and is parsed separately.

``top`` is the live cluster dashboard on the in-band telemetry plane:
it drives a seeded demo cluster and redraws per-node vitals, cluster
rate sparklines, SLO latency tiles, and gray flags each frame
(``--once`` renders a single frame for CI).  ``export`` runs the same
cluster and writes the telemetry as ``metrics.prom`` (Prometheus text
exposition) and ``metrics.jsonl`` (one cluster sample per line).  Both
own their option sets and are parsed separately.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
from typing import Callable, Dict, List, Optional

from repro import obs
from repro.experiments.config import (
    ExperimentConfig,
    PAPER_CONVERGENCE_POPULATION,
    PAPER_POPULATIONS,
)
from repro.experiments import (
    ablations,
    fig_churn,
    fig_convergence,
    fig_dualpeer_ablation,
    fig_region_maps,
    fig_routing,
    fig_routing_load,
    fig_rushhour,
    fig_scaling,
)


def _config_from(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(seed=args.seed, trials=args.trials)


def _run_fig2_3(args: argparse.Namespace) -> str:
    results = fig_region_maps.run_fig2_fig3(
        _config_from(args), population=args.population or 500
    )
    return fig_region_maps.render_report(results)


def _run_fig5_6(args: argparse.Namespace) -> str:
    populations = (
        (args.population,) if args.population else PAPER_POPULATIONS
    )
    result = fig_scaling.run_scaling(
        _config_from(args), populations=populations
    )
    return fig_scaling.render_report(result)


def _run_fig7_8(args: argparse.Namespace) -> str:
    results = fig_convergence.run_all_scenarios(
        _config_from(args),
        population=args.population or PAPER_CONVERGENCE_POPULATION,
        rounds=args.rounds,
        max_adaptations=100_000,
    )
    rounds = fig_convergence.merged_by_round(results)
    return "\n\n".join(
        [
            "Figure 7: mean workload index by round\n\n"
            + rounds.render_table("mean", x_label="round"),
            "Figure 8: std-dev of workload index by round\n\n"
            + rounds.render_table("std", x_label="round"),
        ]
    )


def _run_fig9_10(args: argparse.Namespace) -> str:
    results = fig_convergence.run_all_scenarios(
        _config_from(args),
        population=args.population or PAPER_CONVERGENCE_POPULATION,
        rounds=200,
        max_adaptations=500,
    )
    ops = fig_convergence.thin_collector(
        fig_convergence.merged_by_adaptation(results), step=25
    )
    return "\n\n".join(
        [
            "Figure 9: std-dev of workload index by number of adaptations\n\n"
            + ops.render_table("std", x_label="adaptations"),
            "Figure 10: mean workload index by number of adaptations\n\n"
            + ops.render_table("mean", x_label="adaptations"),
        ]
    )


def _run_routing(args: argparse.Namespace) -> str:
    cells = fig_routing.run_routing(_config_from(args))
    return fig_routing.render_report(cells)


def _run_routing_load(args: argparse.Namespace) -> str:
    results = fig_routing_load.run_routing_load(
        _config_from(args), population=args.population or 1_000
    )
    return fig_routing_load.render_report(results)


def _run_dualpeer(args: argparse.Namespace) -> str:
    results = fig_dualpeer_ablation.run_ablation(
        _config_from(args), population=args.population or 1_000
    )
    return fig_dualpeer_ablation.render_report(results)


def _run_churn(args: argparse.Namespace) -> str:
    results = fig_churn.run_churn_comparison(
        _config_from(args), population=args.population or 1_000
    )
    return fig_churn.render_report(results)


def _run_rushhour(args: argparse.Namespace) -> str:
    results = fig_rushhour.run_rushhour(
        _config_from(args), population=args.population or 1_000
    )
    return fig_rushhour.render_report(results)


def _run_ablations(args: argparse.Namespace) -> str:
    config = _config_from(args)
    population = args.population or 1_000
    sections = [
        ablations.render_split_policy_report(
            ablations.ablate_split_policy(config, population=population)
        ),
        ablations.render_adaptation_report(
            "trigger ratio",
            ablations.ablate_trigger_ratio(config, population=population),
        ),
        ablations.render_adaptation_report(
            "search TTL",
            ablations.ablate_search_ttl(config, population=population),
        ),
        ablations.render_adaptation_report(
            "mechanism sets",
            ablations.ablate_mechanism_sets(config, population=population),
        ),
        ablations.render_adaptation_report(
            "replication fraction",
            ablations.ablate_replication_fraction(
                config, population=population
            ),
        ),
    ]
    return "\n\n".join(sections)


def _run_bench(args: argparse.Namespace) -> str:
    from repro.obs import bench

    out_dir = args.out if args.out is not None else pathlib.Path(".")
    suite = getattr(args, "suite", None)
    paths: List[pathlib.Path] = []
    if suite in (None, "all"):
        if args.population:
            paths += bench.write_bench_files(
                out_dir,
                population=args.population,
                routing_populations=(args.population,),
            )
        else:
            paths += bench.write_bench_files(out_dir)
    if suite == "routing":
        # Just the greedy-vs-cached routing comparison, skipping the
        # micro-ops (and their overhead measurement) for a fast CI run.
        if args.population:
            paths += bench.write_routing_bench_file(
                out_dir, populations=(args.population,)
            )
        else:
            paths += bench.write_routing_bench_file(out_dir)
    if suite in ("store", "all"):
        if args.population:
            paths += bench.write_store_bench_file(
                out_dir, population=args.population
            )
        else:
            paths += bench.write_store_bench_file(out_dir)
    if suite in ("telemetry", "all"):
        # Deliberately pinned to the telemetry bench's validated seed and
        # population (not --seed/--population): the detection-latency and
        # zero-false-positive verdicts are an SLA checked at a fixed
        # configuration, so the artifact stays comparable across PRs.
        paths += bench.write_telemetry_bench_file(out_dir)
    if suite in ("pubsub", "all"):
        # Pinned like the telemetry bench: the loss-free notification
        # verdict is an SLA checked at a fixed configuration.  --smoke
        # skips the wall-clock overhead measurement (the slow half) for
        # CI, keeping the campaign and delivery verdicts.
        paths += bench.write_pubsub_bench_file(
            out_dir, skip_overhead=bool(getattr(args, "smoke", False))
        )
    if suite in ("overload", "all"):
        # Pinned like the pubsub bench: the flash-crowd graceful-
        # degradation verdict is an SLA checked at a fixed configuration.
        # --smoke skips the wall-clock overhead measurement.
        paths += bench.write_overload_bench_file(
            out_dir, skip_overhead=bool(getattr(args, "smoke", False))
        )
    report = bench.render_report(paths)
    for path in paths:
        print(f"[saved to {path}]", file=sys.stderr)
    return report


COMMANDS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "bench": _run_bench,
    "fig2-3": _run_fig2_3,
    "fig5-6": _run_fig5_6,
    "fig7-8": _run_fig7_8,
    "fig9-10": _run_fig9_10,
    "routing": _run_routing,
    "routing-load": _run_routing_load,
    "dualpeer": _run_dualpeer,
    "churn": _run_churn,
    "rushhour": _run_rushhour,
    "ablations": _run_ablations,
}

DESCRIPTIONS = {
    "bench": "write BENCH_micro_ops.json / BENCH_routing.json snapshots "
             "('bench routing' compares greedy vs shortcut-cached routing; "
             "'bench store' writes BENCH_store.json; 'bench telemetry' "
             "writes BENCH_telemetry.json; 'bench pubsub' writes "
             "BENCH_pubsub.json)",
    "fig2-3": "region size & load maps at 500 nodes (Figures 2/3)",
    "fig5-6": "workload-index std/mean vs population (Figures 5/6)",
    "fig7-8": "convergence by adaptation round (Figures 7/8)",
    "fig9-10": "convergence by number of adaptations (Figures 9/10)",
    "routing": "O(2*sqrt(N)) routing-hop check",
    "routing-load": "routing workload balance across variants",
    "dualpeer": "dual-peer ablation (splits, failover, balance)",
    "churn": "resilience under sustained Poisson churn",
    "rushhour": "directional rush-hour drift vs adaptation",
    "ablations": "design-choice ablations (policies, trigger, TTL, ...)",
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the GeoGrid paper's figures.",
    )
    parser.add_argument(
        "command",
        choices=sorted(COMMANDS) + ["list", "all"],
        help="which experiment to run ('list' prints descriptions)",
    )
    parser.add_argument(
        "suite", nargs="?",
        choices=["routing", "store", "telemetry", "pubsub", "overload", "all"],
        default=None,
        help="bench only: 'routing' writes just the greedy-vs-cached "
             "BENCH_routing.json; 'store' writes BENCH_store.json instead "
             "of the micro/routing snapshots; 'telemetry' writes "
             "BENCH_telemetry.json (gray-detection latency, digest bytes, "
             "plane overhead) at its pinned validation seed; 'pubsub' "
             "writes BENCH_pubsub.json (loss-free notification delivery "
             "under faults, sub-plane overhead); 'overload' writes "
             "BENCH_overload.json (flash-crowd graceful degradation, "
             "admission-control overhead); 'all' writes all six",
    )
    parser.add_argument(
        "--trials", type=int, default=3,
        help="trials per configuration (paper: 100; default 3)",
    )
    parser.add_argument(
        "--seed", type=int, default=20070625, help="master random seed"
    )
    parser.add_argument(
        "--population", type=int, default=None,
        help="override the node population (default: per-figure paper value)",
    )
    parser.add_argument(
        "--rounds", type=int, default=25,
        help="adaptation rounds for the convergence figures",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="directory to also write <command>.txt into",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="collect runtime metrics during the run and dump the "
             "registry as JSON after each command",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="bench pubsub/overload only: skip the wall-clock overhead "
             "measurement, keeping the campaign and delivery/degradation "
             "verdicts (the fast CI mode)",
    )
    return parser


def build_chaos_parser() -> argparse.ArgumentParser:
    """The ``chaos`` subcommand's parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description=(
            "Run the seeded fault campaign (asymmetric partitions, gray "
            "failures, crash-restart, regional outages, drop/latency "
            "spikes, churn storms) against the message-level protocol "
            "and write BENCH_chaos.json.  Exit code 1 when any scenario "
            "leaves a persistent invariant violation or loses a stored "
            "object."
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="campaign seed"
    )
    parser.add_argument(
        "--scenario", action="append", default=None,
        help="run only this scenario (repeatable; default: all)",
    )
    parser.add_argument(
        "--population", type=int, default=10,
        help="nodes joined before faults are injected",
    )
    parser.add_argument(
        "--objects", type=int, default=16,
        help="location objects stored and verified at the end",
    )
    parser.add_argument(
        "--drop", type=float, default=0.05,
        help="baseline random drop probability during scenarios",
    )
    parser.add_argument(
        "--skip-overhead", action="store_true",
        help="skip the reliable-layer wall-clock overhead measurement",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="run the campaign under a live metrics registry and dump it "
             "as JSON afterwards (also written as chaos.metrics.json)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="directory to write BENCH_chaos.json into (default: cwd)",
    )
    return parser


def _chaos_main(argv: List[str]) -> int:
    import json

    from repro.errors import ConfigurationError
    from repro.obs.bench import bench_meta
    from repro.sim.chaos import (
        ChaosConfig,
        SCENARIOS,
        measure_reliable_overhead,
        run_campaign,
    )

    args = build_chaos_parser().parse_args(argv)
    if args.scenario:
        unknown = [name for name in args.scenario if name not in SCENARIOS]
        if unknown:
            print(
                f"error: unknown scenario(s) {unknown}; "
                f"known: {sorted(SCENARIOS)}",
                file=sys.stderr,
            )
            return 2
    try:
        config = ChaosConfig(
            seed=args.seed,
            population=args.population,
            objects=args.objects,
            drop_probability=args.drop,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    registry = obs.enable() if args.metrics else None
    try:
        report = run_campaign(config, scenarios=args.scenario)
    finally:
        if registry is not None:
            obs.disable()
    print(report.render())

    payload: Dict[str, object] = {"_meta": bench_meta()}
    for result in report.results:
        payload[f"chaos.{result.name}"] = {
            "ok": result.ok,
            "violations": len(result.violations),
            "lost_objects": result.lost_objects,
            "objects": result.objects,
            "dead_letters": result.dead_letters,
            "retries": result.retries,
            "acked": result.acked,
            "duplicates": result.duplicates,
            "sim_time": result.sim_time,
        }
    if not args.skip_overhead:
        overhead = measure_reliable_overhead(seed=args.seed)
        payload["chaos.overhead"] = overhead
        print()
        print(
            f"reliable-layer overhead (loss-free): "
            f"{overhead['ratio']:.3f}x "
            f"({overhead['enabled_s']:.3f}s vs {overhead['disabled_s']:.3f}s)"
        )
    out_dir = args.out if args.out is not None else pathlib.Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "BENCH_chaos.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    print(f"[saved to {path}]", file=sys.stderr)
    if registry is not None:
        dump = registry.to_json()
        print()
        print("=== metrics: chaos ===")
        print(dump)
        metrics_path = out_dir / "chaos.metrics.json"
        metrics_path.write_text(dump + "\n")
        print(f"[saved to {metrics_path}]", file=sys.stderr)
    return 0 if report.ok else 1


def build_top_parser() -> argparse.ArgumentParser:
    """The ``top`` subcommand's parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description=(
            "Live cluster dashboard on the in-band telemetry plane: "
            "drives a seeded demo cluster and redraws per-node vitals, "
            "cluster-rate sparklines, SLO latency tiles, and gray flags "
            "each frame.  --once renders a single frame and exits (CI)."
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="demo cluster seed"
    )
    parser.add_argument(
        "--population", type=int, default=10,
        help="nodes in the demo cluster",
    )
    parser.add_argument(
        "--interval", type=float, default=10.0,
        help="sim-seconds advanced per frame",
    )
    parser.add_argument(
        "--frames", type=int, default=0,
        help="stop after this many frames (0 = until interrupted)",
    )
    parser.add_argument(
        "--refresh", type=float, default=1.0,
        help="wall-clock seconds between frames",
    )
    parser.add_argument(
        "--width", type=int, default=48,
        help="sparkline width (columns of retained history)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="render one frame without clearing the screen, then exit",
    )
    return parser


def _top_main(argv: List[str]) -> int:
    import time

    from repro.obs.telemetry import cluster_sample, demo_cluster, drive_traffic
    from repro.viz.dashboard import render_dashboard

    args = build_top_parser().parse_args(argv)
    cluster, rng = demo_cluster(
        seed=args.seed, population=args.population
    )
    frames = 1 if args.once else args.frames
    samples: List[dict] = []
    rendered = 0
    try:
        while frames <= 0 or rendered < frames:
            drive_traffic(
                cluster, rng, duration=args.interval, operations=6
            )
            samples.append(cluster_sample(cluster))
            del samples[: -args.width]
            page = render_dashboard(samples, width=args.width)
            if not args.once and sys.stdout.isatty():
                # Home the cursor and clear to end-of-screen between
                # frames, the standard flicker-free top(1) redraw.
                print("\x1b[H\x1b[J", end="")
            print(page)
            rendered += 1
            if args.once or (frames > 0 and rendered >= frames):
                break
            time.sleep(max(0.0, args.refresh))
    except KeyboardInterrupt:
        pass
    return 0


def build_export_parser() -> argparse.ArgumentParser:
    """The ``export`` subcommand's parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro export",
        description=(
            "Run the seeded demo cluster under a live metrics registry "
            "and export its telemetry: metrics.prom (Prometheus text "
            "exposition of the registry plus the final cluster sample) "
            "and metrics.jsonl (one cluster sample per line)."
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="demo cluster seed"
    )
    parser.add_argument(
        "--population", type=int, default=10,
        help="nodes in the demo cluster",
    )
    parser.add_argument(
        "--samples", type=int, default=6,
        help="telemetry samples to collect (one per traffic slice)",
    )
    parser.add_argument(
        "--interval", type=float, default=10.0,
        help="sim-seconds advanced per sample",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="directory to write metrics.prom / metrics.jsonl into "
             "(default: cwd)",
    )
    return parser


def _export_main(argv: List[str]) -> int:
    from repro.obs.export import (
        registry_to_prometheus,
        sample_to_prometheus,
        samples_to_jsonl,
    )
    from repro.obs.telemetry import cluster_sample, demo_cluster, drive_traffic

    args = build_export_parser().parse_args(argv)
    if args.samples < 1:
        print("error: --samples must be >= 1", file=sys.stderr)
        return 2
    registry = obs.enable()
    try:
        cluster, rng = demo_cluster(
            seed=args.seed, population=args.population
        )
        samples = []
        for _ in range(args.samples):
            drive_traffic(
                cluster, rng, duration=args.interval, operations=6
            )
            samples.append(cluster_sample(cluster))
    finally:
        obs.disable()
    out_dir = args.out if args.out is not None else pathlib.Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)
    prom_path = out_dir / "metrics.prom"
    prom_path.write_text(
        registry_to_prometheus(registry) + sample_to_prometheus(samples[-1])
    )
    jsonl_path = out_dir / "metrics.jsonl"
    jsonl_path.write_text(samples_to_jsonl(samples))
    print(
        f"exported {args.samples} sample(s) of {len(samples[-1]['nodes'])} "
        f"node(s) at t={samples[-1]['time']:g}"
    )
    for path in (prom_path, jsonl_path):
        print(f"[saved to {path}]", file=sys.stderr)
    return 0


def build_flightrec_parser() -> argparse.ArgumentParser:
    """The ``flightrec`` subcommand's parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro flightrec",
        description=(
            "Dump/filter/pretty-print a flight-recorder journal, or "
            "replay the fault-injected split brain with --demo."
        ),
    )
    parser.add_argument(
        "journal", nargs="?", type=pathlib.Path, default=None,
        help="JSONL journal written by FlightRecorder.dump_jsonl",
    )
    parser.add_argument(
        "--demo", action="store_true",
        help="replay the double hole-grant split brain under fault "
             "injection and print the forensics dump",
    )
    parser.add_argument(
        "--seed", type=int, default=14, help="demo scenario seed"
    )
    parser.add_argument(
        "--around", type=float, default=None,
        help="keep events within --window of this sim time",
    )
    parser.add_argument(
        "--window", type=float, default=10.0,
        help="half-width of the --around time window",
    )
    parser.add_argument(
        "--last", type=int, default=None,
        help="keep only the final N surviving events",
    )
    parser.add_argument(
        "--kind", action="append", default=None,
        help="keep this event kind (repeatable)",
    )
    parser.add_argument(
        "--trace", type=int, default=None,
        help="keep one causal trace by id",
    )
    parser.add_argument(
        "--grep", default=None,
        help="keep events whose rendered fields contain this substring",
    )
    parser.add_argument(
        "--tree", action="store_true",
        help="render surviving traces as span trees instead of a flat "
             "event listing",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="also write the surviving events as JSONL to this file",
    )
    return parser


def _flightrec_main(argv: List[str]) -> int:
    from repro.obs import causal
    # Not ``from repro.obs import flightrec``: the facade *function* of
    # the same name shadows the submodule as a package attribute.
    from repro.obs.flightrec import filter_events, load_jsonl, render_events

    args = build_flightrec_parser().parse_args(argv)
    if args.demo:
        from repro.protocol.forensics import run_split_brain_repro

        report = run_split_brain_repro(seed=args.seed)
        print(report.render())
        if args.out is not None:
            report.recorder.dump_jsonl(args.out)
            print(f"[saved journal to {args.out}]", file=sys.stderr)
        return 0
    if args.journal is None:
        print(
            "error: provide a journal file or --demo "
            "(see python -m repro flightrec --help)",
            file=sys.stderr,
        )
        return 2
    events = load_jsonl(args.journal)
    selected = filter_events(
        events,
        around=args.around,
        window=args.window,
        last=args.last,
        kind=args.kind,
        trace_id=args.trace,
        grep=args.grep,
    )
    if args.tree:
        for trace_id in causal.trace_ids(selected):
            print(f"--- trace {trace_id} ---")
            # Build from the *full* journal so filtered-out parents still
            # shape the tree; the filter chooses which traces to show.
            print(causal.render_trace(causal.build_trace(events, trace_id)))
            print()
    else:
        print(render_events(selected))
    if args.out is not None:
        import json

        args.out.write_text(
            "".join(
                json.dumps(event, sort_keys=True, default=str) + "\n"
                for event in selected
            )
        )
        print(f"[saved {len(selected)} events to {args.out}]", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    # ``flightrec`` takes its own option set (journal filters), so it is
    # routed before the figure parser sees -- and rejects -- its flags.
    if argv and argv[0] == "flightrec":
        try:
            return _flightrec_main(list(argv[1:]))
        except BrokenPipeError:
            # Journal dumps are routinely piped into ``head``; a closed
            # pipe is a normal end of output, not an error.
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            return 0
    # ``chaos`` likewise owns its option set (fault-campaign knobs).
    if argv and argv[0] == "chaos":
        return _chaos_main(list(argv[1:]))
    # ``top`` and ``export`` own their option sets (telemetry-plane
    # dashboard and exporters).
    if argv and argv[0] == "top":
        return _top_main(list(argv[1:]))
    if argv and argv[0] == "export":
        return _export_main(list(argv[1:]))
    args = build_parser().parse_args(argv)
    if args.suite is not None and args.command != "bench":
        print(
            f"error: the '{args.suite}' suite argument only applies to "
            f"'bench'",
            file=sys.stderr,
        )
        return 2
    if args.command == "list":
        for name in sorted(COMMANDS):
            print(f"{name:<14} {DESCRIPTIONS[name]}")
        print(
            f"{'flightrec':<14} inspect flight-recorder journals "
            f"(own flags; see 'flightrec --help')"
        )
        print(
            f"{'chaos':<14} seeded fault campaign writing BENCH_chaos.json "
            f"(own flags; see 'chaos --help')"
        )
        print(
            f"{'top':<14} live telemetry dashboard of a demo cluster "
            f"(own flags; see 'top --help')"
        )
        print(
            f"{'export':<14} write metrics.prom / metrics.jsonl telemetry "
            f"exports (own flags; see 'export --help')"
        )
        return 0
    names = sorted(COMMANDS) if args.command == "all" else [args.command]
    registry = obs.enable() if args.metrics else None
    try:
        for name in names:
            report = COMMANDS[name](args)
            print(report)
            print()
            if args.out is not None:
                args.out.mkdir(parents=True, exist_ok=True)
                path = args.out / f"{name}.txt"
                path.write_text(report + "\n")
                print(f"[saved to {path}]", file=sys.stderr)
            if registry is not None:
                dump = registry.to_json()
                print(f"=== metrics: {name} ===")
                print(dump)
                print()
                if args.out is not None:
                    metrics_path = args.out / f"{name}.metrics.json"
                    metrics_path.write_text(dump + "\n")
                    print(f"[saved to {metrics_path}]", file=sys.stderr)
                registry.reset()
    finally:
        if registry is not None:
            obs.disable()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
