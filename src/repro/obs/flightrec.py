"""The flight recorder: a bounded, deterministic journal of causal events.

PR 2's hardest protocol bugs (the double hole-grant split brain, the
declined-split retraction miss) each took a seed-by-seed forensic hunt,
because the metrics layer records *events* but not *causality*.  The
flight recorder is the black box that turns those hunts into a one-command
replay: every message send/delivery/drop and every protocol decision
(grants, yields, failovers, caretaker adoptions, audit violations) is
appended to one bounded ring, stamped with the virtual time and the causal
span that produced it.

Design constraints match the metrics registry's:

1. **Off by default, near-free when off.**  Instrumentation sites check
   :func:`repro.obs.flightrec` (one module global) and return.
2. **Deterministic.**  Events are keyed by sim time plus monotonic
   sequence, trace and span ids come from per-recorder counters, and no
   wall-clock or process-random state is ever recorded -- two identical
   runs produce byte-identical journals.
3. **Bounded.**  The ring keeps the most recent ``capacity`` events; the
   interesting window around a failure is always the *recent* past, which
   is exactly what survives.

Events are plain dicts (``{"t", "seq", "kind", ...fields}``) so they can
be filtered, sliced, and round-tripped through JSONL without a schema
migration every time an instrumentation site adds a field.  The causal
fields -- ``trace_id``, ``span_id``, ``parent_span``, ``msg_id`` -- are
what :mod:`repro.obs.causal` uses to rebuild hop-by-hop span trees.
"""

from __future__ import annotations

import itertools
import json
import pathlib
from collections import deque
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Union,
)

__all__ = [
    "FlightRecorder",
    "filter_events",
    "load_jsonl",
    "render_events",
]

#: Default bound on the journal ring.
DEFAULT_CAPACITY = 65_536

#: One journal record.  Kept as a plain dict for JSONL round-tripping.
JournalEvent = Dict[str, object]


class FlightRecorder:
    """A bounded ring of causally-linked journal events.

    ``clock`` supplies the default timestamp for events recorded without
    an explicit time (e.g. from layers that have no scheduler handle);
    wire it to the simulation scheduler with
    ``FlightRecorder(clock=lambda: scheduler.now)``.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.clock = clock
        self._events: Deque[JournalEvent] = deque(maxlen=capacity)
        #: Events appended over the recorder's lifetime (the ring only
        #: retains the most recent ``capacity`` of them).
        self.appended = 0
        self._seq = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Id allocation (used by repro.obs.causal and the transport)
    # ------------------------------------------------------------------
    def next_trace_id(self) -> int:
        """A fresh trace id (one per causally-independent operation)."""
        return next(self._trace_ids)

    def next_span_id(self) -> int:
        """A fresh span id (one per message or operation span)."""
        return next(self._span_ids)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self, kind: str, t: Optional[float] = None, /, **fields: object
    ) -> JournalEvent:
        """Append one journal event and return it.

        ``kind`` and ``t`` are positional-only so instrumentation sites
        may use ``kind=...`` / ``t=...`` as ordinary event fields.  With
        ``t=None`` the recorder's ``clock`` supplies the timestamp (0.0
        when no clock is attached).
        """
        if t is None:
            t = self.clock() if self.clock is not None else 0.0
        event: JournalEvent = {"t": t, "seq": next(self._seq), "kind": kind}
        event.update(fields)
        self._events.append(event)
        self.appended += 1
        return event

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def events(
        self,
        kind: Optional[Union[str, Sequence[str]]] = None,
        trace_id: Optional[int] = None,
    ) -> List[JournalEvent]:
        """Retained events, optionally filtered by kind and/or trace."""
        return filter_events(self._events, kind=kind, trace_id=trace_id)

    def slice(
        self,
        around: Optional[float] = None,
        window: float = 10.0,
        last: Optional[int] = None,
        kind: Optional[Union[str, Sequence[str]]] = None,
        trace_id: Optional[int] = None,
        grep: Optional[str] = None,
    ) -> List[JournalEvent]:
        """The journal slice around a failure (see :func:`filter_events`)."""
        return filter_events(
            self._events,
            around=around,
            window=window,
            last=last,
            kind=kind,
            trace_id=trace_id,
            grep=grep,
        )

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def dumps_jsonl(self) -> str:
        """The retained journal as JSON-lines text (one event per line)."""
        return "\n".join(
            json.dumps(event, sort_keys=True, default=str)
            for event in self._events
        )

    def dump_jsonl(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the retained journal to ``path`` as JSONL."""
        path = pathlib.Path(path)
        text = self.dumps_jsonl()
        path.write_text(text + "\n" if text else "")
        return path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FlightRecorder(events={len(self._events)}/{self.capacity}, "
            f"appended={self.appended})"
        )


def load_jsonl(path: Union[str, pathlib.Path]) -> List[JournalEvent]:
    """Read a journal written by :meth:`FlightRecorder.dump_jsonl`."""
    events: List[JournalEvent] = []
    for line in pathlib.Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            events.append(json.loads(line))
    return events


def filter_events(
    events: Iterable[JournalEvent],
    around: Optional[float] = None,
    window: float = 10.0,
    last: Optional[int] = None,
    kind: Optional[Union[str, Sequence[str]]] = None,
    trace_id: Optional[int] = None,
    grep: Optional[str] = None,
) -> List[JournalEvent]:
    """Select journal events for inspection.

    * ``around``/``window`` keep events with ``t`` in
      ``[around - window, around + window]`` -- the "last N seconds
      around a failure" view.
    * ``kind`` keeps one kind (or any of a sequence of kinds).
    * ``trace_id`` keeps one causal trace.
    * ``grep`` keeps events whose rendered fields contain the substring
      (how a contested rect or address is chased through the journal).
    * ``last`` keeps only the final N of whatever survived the filters.
    """
    kinds = None
    if kind is not None:
        kinds = {kind} if isinstance(kind, str) else set(kind)
    selected: List[JournalEvent] = []
    for event in events:
        if kinds is not None and event.get("kind") not in kinds:
            continue
        if trace_id is not None and event.get("trace_id") != trace_id:
            continue
        if around is not None:
            t = float(event.get("t", 0.0))
            if not (around - window <= t <= around + window):
                continue
        if grep is not None and grep not in _render_fields(event):
            continue
        selected.append(event)
    if last is not None and last >= 0:
        selected = selected[-last:] if last else []
    return selected


#: Keys rendered in the fixed prefix columns rather than the field list.
_PREFIX_KEYS = ("t", "seq", "kind", "trace_id", "span_id", "parent_span")


def _render_fields(event: JournalEvent) -> str:
    parts = [
        f"{key}={event[key]}"
        for key in event
        if key not in _PREFIX_KEYS
    ]
    return " ".join(parts)


def render_events(events: Sequence[JournalEvent]) -> str:
    """Pretty-print a journal slice, one aligned line per event."""
    if not events:
        return "(no events)"
    lines = []
    for event in events:
        trace = event.get("trace_id")
        span = event.get("span_id")
        causal = ""
        if trace is not None:
            causal = f"  [trace {trace}"
            if span is not None:
                parent = event.get("parent_span")
                causal += f" span {span}"
                if parent is not None:
                    causal += f"<-{parent}"
            causal += "]"
        lines.append(
            f"t={float(event.get('t', 0.0)):>10.3f}  "
            f"{str(event.get('kind', '?')):<18}"
            f"{causal:<24}  {_render_fields(event)}"
        )
    return "\n".join(lines)
