"""The continuous invariant auditor for the message-level protocol.

PR 2's split-brain and phantom-region bugs were only *noticed* at the end
of a run, when a quiescence assertion failed -- by which point the trace
ring held hours of unrelated traffic and the hunt for "when did coverage
first break?" was manual.  The auditor closes that gap: attached to a
:class:`~repro.protocol.cluster.ProtocolCluster` it re-checks the
protocol's global invariants at a configurable sim-time interval and, on
violation, records an ``audit_violation`` journal event so the flight
recorder's slice around that moment *is* the forensic dump.

Checks (each individually selectable):

* ``overlap`` -- no two live primaries' regions intersect (the double
  hole-grant split brain is exactly this).  **Hard**: reported the tick
  it appears.
* ``coverage`` -- live primaries plus caretakers cover the whole plane.
* ``symmetry`` -- adjacent live primaries know each other (neighbor-link
  symmetry; a one-sided link is how phantom regions and missed
  retractions begin).
* ``dualpeer`` -- a primary's ``peer`` points at a live secondary that
  agrees on the rect and points back.
* ``store_placement`` -- the latest version of every stored location
  object resides at an owner whose territory covers its position (stale
  older copies awaiting eviction are tolerated; lookups deduplicate them
  last-writer-wins).
* ``store_replication`` -- a primary's store and its live secondary's
  replica converge at quiescence.  The violation subject includes the
  divergence fingerprint, so divergence that keeps *changing* (updates in
  flight) never confirms -- only divergence frozen across two ticks,
  which is exactly what the bounded anti-entropy pass should have
  repaired, does.
* ``shortcuts`` -- every node's routing shortcut cache is structurally
  consistent: within capacity, never naming the node itself, never
  overlapping the node's own region, and never duplicating a
  neighbor-table rect (a shortcut is by definition a *non-neighbor*
  entry).  Staleness against the *global* partition is deliberately not
  checked -- lagging entries are the cache's normal state and the
  MISROUTE path repairs them lazily.
* ``telemetry`` -- the in-band telemetry plane stays structurally
  consistent: a node's digest version never regresses between audit
  ticks, the last digest fits the wire byte budget, health views never
  track their own owner, stay within capacity, and never hold a peer
  digest version *ahead* of what that peer has actually rolled (a view
  ahead of its source means fabricated or corrupted evidence).
* ``subscriptions`` -- every live continuous-query record sits at a
  primary whose territory (or caretaken ground) touches the watched
  rectangle, and a primary's subscription index converges with its live
  secondary's replica at quiescence (same frozen-divergence fingerprint
  trick as ``store_replication``).  Expired leases awaiting the next
  sweep are tolerated; only *live* records can be phantoms.

All checks except ``overlap`` are **soft**: legitimately violated for a
grant's flight time during growth, so a finding is only *reported* when
it persists across two consecutive audit ticks (deterministic debounce).
A reported violation stays active until its key clears, so the
``violations`` list records state *transitions* -- the first entry is
"when it first broke".

The auditor reads only the same global test-harness view the cluster's
own quiescence assertions use; it never mutates protocol state, so
auditing a run cannot change its outcome (beyond consuming rng-free
scheduler slots, which do not perturb message timing).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.errors import SimulationError

__all__ = ["AuditError", "AuditViolation", "InvariantAuditor", "ALL_CHECKS"]

#: Every check the auditor knows, in report order.
ALL_CHECKS = (
    "overlap",
    "coverage",
    "symmetry",
    "dualpeer",
    "store_placement",
    "store_replication",
    "shortcuts",
    "telemetry",
    "subscriptions",
)

#: Relative tolerance on area comparisons (matches the cluster checks).
_AREA_EPS = 1e-6


class AuditError(SimulationError):
    """Raised when ``halt_on_violation`` is set and an invariant breaks."""


@dataclass(frozen=True)
class AuditViolation:
    """One confirmed invariant violation."""

    #: Sim time of the audit tick that confirmed the violation.
    time: float
    #: Which invariant broke (one of :data:`ALL_CHECKS`).
    check: str
    #: ``"hard"`` (structural, reported immediately) or ``"soft"``
    #: (debounced across two ticks).
    severity: str
    #: Stable identity of the violation (rects/addresses involved), used
    #: for debounce and journal correlation.
    subject: str
    #: Human-readable description.
    detail: str
    #: Machine-readable context (e.g. ``{"rects": [...], "owners": [...]}``)
    #: for forensics tooling.
    data: Dict[str, object] = field(default_factory=dict, compare=False)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[t={self.time:g}] {self.check}/{self.severity}: {self.detail}"
        )


class InvariantAuditor:
    """Periodically audit a protocol cluster's global invariants.

    ``cluster`` is duck-typed: anything with ``nodes`` (mapping to
    protocol nodes), ``bounds`` and ``scheduler`` works, so tests can
    audit hand-built fixtures.
    """

    def __init__(
        self,
        cluster,
        interval: float = 5.0,
        checks: Sequence[str] = ALL_CHECKS,
        allow_caretaker_holes: bool = True,
        halt_on_violation: bool = False,
    ) -> None:
        unknown = set(checks) - set(ALL_CHECKS)
        if unknown:
            raise ValueError(f"unknown audit checks: {sorted(unknown)}")
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.cluster = cluster
        self.interval = interval
        self.checks = tuple(checks)
        self.allow_caretaker_holes = allow_caretaker_holes
        self.halt_on_violation = halt_on_violation
        #: Confirmed violations, in confirmation order (state transitions:
        #: one entry per key per breakage episode).
        self.violations: List[AuditViolation] = []
        #: Number of completed audit ticks.
        self.ticks = 0
        self._timer = None
        #: Soft findings seen last tick, awaiting confirmation.
        self._pending: Dict[Tuple[str, str], AuditViolation] = {}
        #: Keys currently in reported-violation state.
        self._active: Set[Tuple[str, str]] = set()
        #: Digest versions seen at the previous pass, keyed by address
        #: string (the ``telemetry`` monotonicity memo).
        self._vitals_memo: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "InvariantAuditor":
        """Arm the periodic audit timer on the cluster's scheduler."""
        if self._timer is None:
            self._timer = self.cluster.scheduler.every(
                self.interval, self.tick
            )
        return self

    def stop(self) -> None:
        """Disarm the audit timer."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # Auditing
    # ------------------------------------------------------------------
    def tick(self) -> List[AuditViolation]:
        """Run one audit pass; returns the violations confirmed this tick.

        Hard findings confirm immediately; soft findings confirm on their
        second consecutive sighting.  Confirmed violations are appended to
        :attr:`violations`, journaled, and -- with ``halt_on_violation``
        -- raised as :class:`AuditError`.
        """
        self.ticks += 1
        now = self.cluster.scheduler.now
        findings = self.run_checks()
        confirmed: List[AuditViolation] = []
        pending: Dict[Tuple[str, str], AuditViolation] = {}
        seen: Set[Tuple[str, str]] = set()
        for violation in findings:
            key = (violation.check, violation.subject)
            seen.add(key)
            if key in self._active:
                continue  # already reported; still broken
            if violation.severity == "hard" or key in self._pending:
                confirmed.append(violation)
                self._active.add(key)
            else:
                pending[key] = violation
        self._pending = pending
        self._active &= seen  # cleared keys may be re-reported later
        for violation in confirmed:
            self.violations.append(violation)
            obs.record(
                "audit_violation",
                now,
                check=violation.check,
                severity=violation.severity,
                subject=violation.subject,
                detail=violation.detail,
            )
        if confirmed and self.halt_on_violation:
            raise AuditError(
                f"invariant violation at t={now:g}: {confirmed[0].detail}"
            )
        return confirmed

    def run_checks(self) -> List[AuditViolation]:
        """One stateless audit pass: every enabled check, no debounce."""
        now = self.cluster.scheduler.now
        nodes = [node for node in self.cluster.nodes.values() if node.alive]
        primaries = [
            node
            for node in nodes
            if node.joined
            and node.owned is not None
            and node.owned.role == "primary"
        ]
        findings: List[AuditViolation] = []
        if "overlap" in self.checks:
            findings.extend(self._check_overlap(now, primaries))
        if "coverage" in self.checks:
            findings.extend(self._check_coverage(now, nodes, primaries))
        if "symmetry" in self.checks:
            findings.extend(self._check_symmetry(now, primaries))
        if "dualpeer" in self.checks:
            findings.extend(self._check_dualpeer(now, nodes, primaries))
        if "store_placement" in self.checks:
            findings.extend(self._check_store_placement(now, nodes, primaries))
        if "store_replication" in self.checks:
            findings.extend(
                self._check_store_replication(now, nodes, primaries)
            )
        if "shortcuts" in self.checks:
            findings.extend(self._check_shortcuts(now, nodes))
        if "telemetry" in self.checks:
            findings.extend(self._check_telemetry(now, nodes))
        if "subscriptions" in self.checks:
            findings.extend(self._check_subscriptions(now, nodes, primaries))
        return findings

    # ------------------------------------------------------------------
    # Individual checks
    # ------------------------------------------------------------------
    def _check_overlap(self, now, primaries) -> List[AuditViolation]:
        findings = []
        for i, a in enumerate(primaries):
            for b in primaries[i + 1 :]:
                ra, rb = a.owned.rect, b.owned.rect
                if ra == rb or ra.intersects(rb):
                    rects = sorted((str(ra), str(rb)))
                    owners = sorted((str(a.address), str(b.address)))
                    findings.append(
                        AuditViolation(
                            time=now,
                            check="overlap",
                            severity="hard",
                            subject="|".join(rects),
                            detail=(
                                f"primaries {owners[0]} and {owners[1]} "
                                f"both claim overlapping ground: "
                                f"{rects[0]} vs {rects[1]}"
                            ),
                            data={"rects": rects, "owners": owners},
                        )
                    )
        return findings

    def _check_coverage(self, now, nodes, primaries) -> List[AuditViolation]:
        bounds = self.cluster.bounds
        covered = sum(node.owned.rect.area for node in primaries)
        missing = bounds.area - covered
        if missing <= _AREA_EPS * bounds.area:
            return []
        caretaken = 0.0
        holes: Set[tuple] = set()
        for node in nodes:
            for rect in getattr(node, "caretaker_rects", ()):
                key = rect.as_tuple()
                if key not in holes:
                    holes.add(key)
                    caretaken += rect.area
        if (
            self.allow_caretaker_holes
            and missing <= caretaken + _AREA_EPS * bounds.area
        ):
            return []  # the documented degraded-but-serviceable state
        return [
            AuditViolation(
                time=now,
                check="coverage",
                severity="soft",
                subject=f"missing~{missing:.6g}",
                detail=(
                    f"primaries cover {covered:g} of {bounds.area:g} "
                    f"(caretakers stand in for {caretaken:g}); "
                    f"{missing - caretaken:g} of the plane is unserved"
                ),
                data={"missing": missing, "caretaken": caretaken},
            )
        ]

    def _check_symmetry(self, now, primaries) -> List[AuditViolation]:
        findings = []
        for i, a in enumerate(primaries):
            for b in primaries[i + 1 :]:
                ra, rb = a.owned.rect, b.owned.rect
                if not ra.is_neighbor_of(rb):
                    continue
                a_knows = rb in a.neighbor_table
                b_knows = ra in b.neighbor_table
                if a_knows and b_knows:
                    continue
                gaps = []
                if not a_knows:
                    gaps.append(f"{a.address} lacks {rb}")
                if not b_knows:
                    gaps.append(f"{b.address} lacks {ra}")
                owners = sorted((str(a.address), str(b.address)))
                findings.append(
                    AuditViolation(
                        time=now,
                        check="symmetry",
                        severity="soft",
                        subject="~".join(owners),
                        detail=(
                            "neighbor link broken between adjacent "
                            f"primaries: {'; '.join(gaps)}"
                        ),
                        data={"owners": owners},
                    )
                )
        return findings

    def _check_dualpeer(self, now, nodes, primaries) -> List[AuditViolation]:
        findings = []
        by_address = {node.address: node for node in nodes}
        for primary in primaries:
            peer_address = primary.owned.peer
            if peer_address is None:
                continue
            peer = by_address.get(peer_address)
            if peer is None or not peer.alive:
                continue  # the failure sweep will evict it; not split state
            agrees = (
                peer.owned is not None
                and peer.owned.role == "secondary"
                and peer.owned.rect == primary.owned.rect
                and peer.owned.peer == primary.address
            )
            if agrees:
                continue
            findings.append(
                AuditViolation(
                    time=now,
                    check="dualpeer",
                    severity="soft",
                    subject=f"{primary.address}+{peer_address}",
                    detail=(
                        f"primary {primary.address} of "
                        f"{primary.owned.rect} names live peer "
                        f"{peer_address}, which does not reciprocate"
                    ),
                    data={
                        "primary": str(primary.address),
                        "secondary": str(peer_address),
                        "rect": str(primary.owned.rect),
                    },
                )
            )
        return findings

    def _check_store_placement(
        self, now, nodes, primaries
    ) -> List[AuditViolation]:
        """Every live object's latest version sits at a covering owner."""
        holders: List[tuple] = []  # (node, record)
        best: Dict[object, object] = {}
        for node in primaries:
            store = getattr(node.owned, "store", None)
            if store is None:
                continue
            for record in store.records():
                holders.append((node, record))
                current = best.get(record.object_id)
                if current is None or record.version > current.version:
                    best[record.object_id] = record
        findings = []
        for node, record in holders:
            if record is not best.get(record.object_id):
                continue  # a stale copy awaiting eviction; lookups LWW it away
            rect = node.owned.rect
            placed = rect.covers(
                record.point, closed_low_x=True, closed_low_y=True
            ) or any(
                hole.covers(record.point, closed_low_x=True, closed_low_y=True)
                for hole in getattr(node, "caretaker_rects", ())
            )
            if placed:
                continue
            findings.append(
                AuditViolation(
                    time=now,
                    check="store_placement",
                    severity="soft",
                    subject=f"{record.object_id!r}@v{record.version}",
                    detail=(
                        f"object {record.object_id!r} v{record.version} at "
                        f"{record.point} is stored by {node.address}, whose "
                        f"territory {rect} does not cover it"
                    ),
                    data={
                        "object_id": str(record.object_id),
                        "owners": [str(node.address)],
                        "rects": [str(rect)],
                    },
                )
            )
        return findings

    def _check_store_replication(
        self, now, nodes, primaries
    ) -> List[AuditViolation]:
        """Primary store and live secondary replica converge at quiescence."""
        by_address = {node.address: node for node in nodes}
        findings = []
        for primary in primaries:
            store = getattr(primary.owned, "store", None)
            peer_address = primary.owned.peer
            if store is None or peer_address is None:
                continue
            peer = by_address.get(peer_address)
            if (
                peer is None
                or not peer.alive
                or peer.owned is None
                or peer.owned.role != "secondary"
                or peer.owned.rect != primary.owned.rect
                or getattr(peer.owned, "store", None) is None
            ):
                continue  # dualpeer check owns the disagreement case
            divergent = store.diff_keys(peer.owned.store.digest())
            if not divergent:
                continue
            # Fingerprint the divergence: confirming requires the *same*
            # buckets to disagree in the *same* way on two consecutive
            # ticks, so in-flight traffic (ever-changing digests) never
            # reports, while frozen divergence -- lost replication the
            # anti-entropy pass failed to repair -- does.
            local = store.digest()
            remote = peer.owned.store.digest()
            fingerprint = "|".join(
                f"{key}:{local.get(key)}vs{remote.get(key)}"
                for key in divergent
            )
            findings.append(
                AuditViolation(
                    time=now,
                    check="store_replication",
                    severity="soft",
                    subject=(
                        f"{primary.address}+{peer_address}"
                        f"#{zlib.crc32(fingerprint.encode()):08x}"
                    ),
                    detail=(
                        f"store replicas of {primary.owned.rect} diverge in "
                        f"{len(divergent)} bucket(s) between primary "
                        f"{primary.address} and secondary {peer_address}"
                    ),
                    data={
                        "owners": [str(primary.address), str(peer_address)],
                        "rects": [str(primary.owned.rect)],
                        "buckets": [str(key) for key in divergent],
                    },
                )
            )
        return findings

    def _check_shortcuts(self, now, nodes) -> List[AuditViolation]:
        """Shortcut caches stay structurally consistent with local state.

        These are *locally enforceable* invariants -- the learning path
        guards every one of them -- so a violation means the eager
        invalidation hooks missed a partition change.  Global freshness
        is deliberately unchecked: a lagging entry is the cache's normal
        state, repaired lazily by the MISROUTE NACK.
        """
        findings = []
        for node in nodes:
            cache = getattr(node, "shortcuts", None)
            if cache is None or node.owned is None:
                continue
            problems: List[str] = []
            if len(cache) > cache.capacity:
                problems.append(
                    f"holds {len(cache)} entries over capacity "
                    f"{cache.capacity}"
                )
            own = node.owned.rect
            for info in cache.entries():
                if info.primary == node.address:
                    problems.append(f"entry {info.rect} names the node itself")
                if info.rect == own or info.rect.intersects(own):
                    problems.append(
                        f"entry {info.rect} overlaps own region {own}"
                    )
                if info.rect in node.neighbor_table:
                    problems.append(
                        f"entry {info.rect} duplicates a neighbor-table rect"
                    )
            for problem in problems:
                findings.append(
                    AuditViolation(
                        time=now,
                        check="shortcuts",
                        severity="soft",
                        subject=f"{node.address}:{problem}",
                        detail=(
                            f"shortcut cache of {node.address}: {problem}"
                        ),
                        data={"owners": [str(node.address)]},
                    )
                )
        return findings

    def _check_telemetry(self, now, nodes) -> List[AuditViolation]:
        """The telemetry plane stays structurally honest.

        Unlike the other checks this one keeps a memo across passes (the
        per-node digest version seen last time): monotonicity is a claim
        about *history*, not a property of one snapshot.  The memo is
        keyed by address and pruned to the live set, so a replacement
        node reusing an address after an intervening pass re-baselines.
        """
        from repro.obs.telemetry import DIGEST_BYTE_BUDGET

        findings = []
        live_keys: Set[str] = set()
        by_address = {node.address: node for node in nodes}
        for node in nodes:
            vitals = getattr(node, "vitals", None)
            health = getattr(node, "health", None)
            if vitals is None or health is None:
                continue
            key = str(node.address)
            live_keys.add(key)
            problems: List[str] = []
            seen = self._vitals_memo.get(key)
            if seen is not None and vitals.version < seen:
                problems.append(
                    f"digest version regressed from {seen} to "
                    f"{vitals.version}"
                )
            self._vitals_memo[key] = vitals.version
            digest = getattr(vitals, "last_digest", None)
            if digest is not None:
                size = digest.encoded_size()
                if size > DIGEST_BYTE_BUDGET:
                    problems.append(
                        f"last digest is {size} bytes, over the "
                        f"{DIGEST_BYTE_BUDGET}-byte wire budget"
                    )
            if node.address in health.peers:
                problems.append("health view tracks its own owner")
            if len(health.peers) > health.capacity:
                problems.append(
                    f"health view holds {len(health.peers)} peers over "
                    f"capacity {health.capacity}"
                )
            for peer_address in sorted(
                health.peers, key=lambda a: (a.ip, a.port)
            ):
                peer = by_address.get(peer_address)
                if peer is None:
                    continue  # dead or departed peer: nothing to compare
                peer_vitals = getattr(peer, "vitals", None)
                if peer_vitals is None:
                    continue
                stored = health.peers[peer_address].version
                if stored > peer_vitals.version:
                    problems.append(
                        f"view holds digest v{stored} of {peer_address}, "
                        f"which has only rolled v{peer_vitals.version}"
                    )
            for problem in problems:
                findings.append(
                    AuditViolation(
                        time=now,
                        check="telemetry",
                        severity="soft",
                        subject=f"{key}:{problem}",
                        detail=f"telemetry plane of {key}: {problem}",
                        data={"owners": [key]},
                    )
                )
        # Prune departed nodes so a same-address replacement that joins
        # after at least one pass is not judged against its predecessor.
        for key in list(self._vitals_memo):
            if key not in live_keys:
                del self._vitals_memo[key]
        return findings

    def _check_subscriptions(
        self, now, nodes, primaries
    ) -> List[AuditViolation]:
        """Live continuous queries sit on touching ground and replicate.

        A *phantom* subscription -- a live lease held by a primary whose
        territory no longer touches the watched rectangle, with no
        caretaken ground touching it either -- is exactly the failure
        mode the partition-following handoffs exist to prevent: a
        split/merge/failover that moved the ground but stranded the
        lease.  Expired records awaiting the next sweep are ignored; the
        sweep owns them.  Replication divergence is fingerprinted like
        ``store_replication`` so only *frozen* divergence confirms.
        """
        by_address = {node.address: node for node in nodes}
        findings = []
        for primary in primaries:
            subs = getattr(primary.owned, "subs", None)
            if subs is None or not len(subs):
                continue
            rect = primary.owned.rect
            caretaken = tuple(getattr(primary, "caretaker_rects", ()))
            for record in subs.records():
                if not record.is_live_at(now):
                    continue  # awaiting the lease sweep; not a phantom
                if rect.touches(record.rect) or any(
                    hole.touches(record.rect) for hole in caretaken
                ):
                    continue
                findings.append(
                    AuditViolation(
                        time=now,
                        check="subscriptions",
                        severity="soft",
                        subject=f"{record.sub_id}@v{record.version}",
                        detail=(
                            f"live subscription {record.sub_id!r} "
                            f"v{record.version} on {record.rect} is held "
                            f"by {primary.address}, whose territory "
                            f"{rect} does not touch it"
                        ),
                        data={
                            "sub_id": record.sub_id,
                            "owners": [str(primary.address)],
                            "rects": [str(rect)],
                        },
                    )
                )
            peer_address = primary.owned.peer
            peer = by_address.get(peer_address) if peer_address else None
            if (
                peer is None
                or not peer.alive
                or peer.owned is None
                or peer.owned.role != "secondary"
                or peer.owned.rect != primary.owned.rect
                or getattr(peer.owned, "subs", None) is None
            ):
                continue  # dualpeer check owns the disagreement case
            divergent = []
            for record in subs.records():
                if not record.is_live_at(now):
                    continue
                replica = peer.owned.subs.get(record.sub_id)
                if replica is None or replica.version < record.version:
                    divergent.append(
                        f"{record.sub_id}:v{record.version}vs"
                        f"{'-' if replica is None else replica.version}"
                    )
            if not divergent:
                continue
            fingerprint = "|".join(divergent)
            findings.append(
                AuditViolation(
                    time=now,
                    check="subscriptions",
                    severity="soft",
                    subject=(
                        f"{primary.address}+{peer_address}"
                        f"#{zlib.crc32(fingerprint.encode()):08x}"
                    ),
                    detail=(
                        f"subscription replicas of {primary.owned.rect} "
                        f"diverge in {len(divergent)} record(s) between "
                        f"primary {primary.address} and secondary "
                        f"{peer_address}"
                    ),
                    data={
                        "owners": [str(primary.address), str(peer_address)],
                        "rects": [str(primary.owned.rect)],
                        "records": divergent,
                    },
                )
            )
        return findings

    # ------------------------------------------------------------------
    # Forensics
    # ------------------------------------------------------------------
    def journal_slice(
        self,
        violation: AuditViolation,
        window: float = 30.0,
        events: Optional[Iterable[dict]] = None,
    ) -> List[dict]:
        """The journal slice that explains ``violation``.

        Events within ``window`` sim-time units before the violation,
        plus -- regardless of age -- every event naming one of the
        violation's rects or owners (so the grants that *created* a
        split brain surface even when they predate the window).
        """
        if events is None:
            recorder = obs.flightrec()
            events = recorder.events() if recorder is not None else []
        needles = [
            str(value)
            for key in ("rects", "owners")
            for value in violation.data.get(key, ())  # type: ignore[union-attr]
        ]
        sliced = []
        for event in events:
            t = float(event.get("t", 0.0))
            if violation.time - window <= t <= violation.time:
                sliced.append(event)
                continue
            if needles:
                rendered = " ".join(str(v) for v in event.values())
                if any(needle in rendered for needle in needles):
                    sliced.append(event)
        return sliced

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InvariantAuditor(ticks={self.ticks}, "
            f"violations={len(self.violations)}, "
            f"checks={'/'.join(self.checks)})"
        )
