"""Runtime observability: metrics registry, trace events, bench snapshots.

The paper's entire evaluation is metric-driven (hop counts, workload-index
convergence, per-mechanism adaptation counts), and the ROADMAP's north star
-- a production-scale GeoGrid -- demands that every perf PR can *prove* its
win.  This package is the substrate for that: a lightweight metrics
registry (counters, gauges, bounded histograms with p50/p95/p99) plus
structured trace events, threaded through the routing, partition, overlay,
adaptation, and simulation layers.

Instrumentation is **off by default** and near-zero-cost when off: the
module-level facade functions (:func:`inc`, :func:`observe`,
:func:`set_gauge`, :func:`trace`) check one module global and return
immediately when no registry is installed.  Enable collection with::

    from repro import obs

    registry = obs.enable()
    ... run an experiment ...
    print(registry.to_json())
    obs.disable()

or scoped::

    with obs.capture() as registry:
        ... run an experiment ...
    snapshot = registry.snapshot()

``python -m repro <figure> --metrics`` dumps the registry after any
experiment; ``python -m repro bench`` writes ``BENCH_routing.json`` and
``BENCH_micro_ops.json`` snapshots (see :mod:`repro.obs.bench`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TraceEvent,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceEvent",
    "active",
    "capture",
    "disable",
    "enable",
    "inc",
    "observe",
    "set_gauge",
    "trace",
]

#: The currently installed registry, or ``None`` (the no-op default).
_active: Optional[MetricsRegistry] = None


def active() -> Optional[MetricsRegistry]:
    """The installed registry, or ``None`` when collection is off.

    Hot paths that want to amortize the facade's per-call check (or record
    several related metrics atomically) fetch the registry once through
    this and skip their whole instrumentation block when it is ``None``.
    """
    return _active


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the collection target."""
    global _active
    _active = registry if registry is not None else MetricsRegistry()
    return _active


def disable() -> None:
    """Remove the installed registry; all facade calls become no-ops."""
    global _active
    _active = None


@contextmanager
def capture(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Context manager: collect into ``registry`` for the block's duration.

    Restores whatever registry (or no-op state) was installed before.
    """
    global _active
    previous = _active
    _active = registry if registry is not None else MetricsRegistry()
    try:
        yield _active
    finally:
        _active = previous


def inc(name: str, amount: float = 1.0) -> None:
    """Increment counter ``name`` (no-op when collection is off)."""
    if _active is not None:
        _active.inc(name, amount)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` (no-op when off)."""
    if _active is not None:
        _active.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (no-op when off)."""
    if _active is not None:
        _active.set_gauge(name, value)


def trace(kind: str, /, **fields: object) -> None:
    """Append a structured trace event (no-op when off).

    ``kind`` is positional-only, so ``kind=...`` may appear in ``fields``.
    """
    if _active is not None:
        _active.trace(kind, **fields)
