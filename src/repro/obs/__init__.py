"""Runtime observability: metrics registry, trace events, bench snapshots.

The paper's entire evaluation is metric-driven (hop counts, workload-index
convergence, per-mechanism adaptation counts), and the ROADMAP's north star
-- a production-scale GeoGrid -- demands that every perf PR can *prove* its
win.  This package is the substrate for that: a lightweight metrics
registry (counters, gauges, bounded histograms with p50/p95/p99) plus
structured trace events, threaded through the routing, partition, overlay,
adaptation, and simulation layers.

Instrumentation is **off by default** and near-zero-cost when off: the
module-level facade functions (:func:`inc`, :func:`observe`,
:func:`set_gauge`, :func:`trace`) check one module global and return
immediately when no registry is installed.  Enable collection with::

    from repro import obs

    registry = obs.enable()
    ... run an experiment ...
    print(registry.to_json())
    obs.disable()

or scoped::

    with obs.capture() as registry:
        ... run an experiment ...
    snapshot = registry.snapshot()

``python -m repro <figure> --metrics`` dumps the registry after any
experiment; ``python -m repro bench`` writes ``BENCH_routing.json`` and
``BENCH_micro_ops.json`` snapshots (see :mod:`repro.obs.bench`).

Alongside the metrics registry lives a second, independently switchable
collector: the **flight recorder** (:mod:`repro.obs.flightrec`), a
bounded deterministic journal of causally-linked events that
:mod:`repro.obs.causal` turns into per-request span trees and
:mod:`repro.obs.audit` feeds with invariant-violation reports.  Enable it
with :func:`enable_flightrec` / :func:`flight_capture`; like the
registry, it is off by default and every instrumentation site checks one
module global.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from repro.obs.flightrec import FlightRecorder
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TraceEvent,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceEvent",
    "active",
    "capture",
    "disable",
    "disable_flightrec",
    "enable",
    "enable_flightrec",
    "flight_capture",
    "flightrec",
    "inc",
    "observe",
    "record",
    "set_gauge",
    "trace",
]

#: The currently installed registry, or ``None`` (the no-op default).
_active: Optional[MetricsRegistry] = None

#: The currently installed flight recorder, or ``None`` (journal off).
_flightrec: Optional[FlightRecorder] = None


def active() -> Optional[MetricsRegistry]:
    """The installed registry, or ``None`` when collection is off.

    Hot paths that want to amortize the facade's per-call check (or record
    several related metrics atomically) fetch the registry once through
    this and skip their whole instrumentation block when it is ``None``.
    """
    return _active


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the collection target."""
    global _active
    _active = registry if registry is not None else MetricsRegistry()
    return _active


def disable() -> None:
    """Remove the installed registry; all facade calls become no-ops."""
    global _active
    _active = None


@contextmanager
def capture(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Context manager: collect into ``registry`` for the block's duration.

    Restores whatever registry (or no-op state) was installed before.
    """
    global _active
    previous = _active
    _active = registry if registry is not None else MetricsRegistry()
    try:
        yield _active
    finally:
        _active = previous


def inc(name: str, amount: float = 1.0) -> None:
    """Increment counter ``name`` (no-op when collection is off)."""
    if _active is not None:
        _active.inc(name, amount)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` (no-op when off)."""
    if _active is not None:
        _active.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (no-op when off)."""
    if _active is not None:
        _active.set_gauge(name, value)


def trace(kind: str, /, **fields: object) -> None:
    """Append a structured trace event (no-op when off).

    ``kind`` is positional-only, so ``kind=...`` may appear in ``fields``.
    """
    if _active is not None:
        _active.trace(kind, **fields)


# ----------------------------------------------------------------------
# Flight recorder facade (independent switch from the metrics registry)
# ----------------------------------------------------------------------
def flightrec() -> Optional[FlightRecorder]:
    """The installed flight recorder, or ``None`` when the journal is off.

    Like :func:`active`, hot paths fetch this once and skip their whole
    journal block when it is ``None``.
    """
    return _flightrec


def enable_flightrec(
    recorder: Optional[FlightRecorder] = None,
    capacity: Optional[int] = None,
    clock: Optional[Callable[[], float]] = None,
) -> FlightRecorder:
    """Install ``recorder`` (or a fresh one) as the journal target.

    ``capacity``/``clock`` configure the fresh recorder when none is
    passed; ``clock`` is typically ``lambda: scheduler.now`` so events
    recorded by clock-less layers still carry simulation time.
    """
    global _flightrec
    if recorder is None:
        kwargs = {} if capacity is None else {"capacity": capacity}
        recorder = FlightRecorder(clock=clock, **kwargs)
    _flightrec = recorder
    return recorder


def disable_flightrec() -> None:
    """Remove the installed recorder; journal calls become no-ops."""
    global _flightrec
    _flightrec = None


@contextmanager
def flight_capture(
    recorder: Optional[FlightRecorder] = None,
    capacity: Optional[int] = None,
    clock: Optional[Callable[[], float]] = None,
) -> Iterator[FlightRecorder]:
    """Context manager: journal into ``recorder`` for the block's duration.

    Restores whatever recorder (or off state) was installed before, also
    on exceptions -- nesting works the same way as :func:`capture`.
    """
    global _flightrec
    previous = _flightrec
    installed = enable_flightrec(recorder, capacity=capacity, clock=clock)
    try:
        yield installed
    finally:
        _flightrec = previous


def record(kind: str, t: Optional[float] = None, /, **fields: object) -> None:
    """Append a journal event (no-op when the flight recorder is off).

    ``kind``/``t`` are positional-only; with ``t=None`` the recorder's
    attached clock supplies the timestamp.
    """
    if _flightrec is not None:
        _flightrec.record(kind, t, **fields)
