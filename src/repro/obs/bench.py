"""The benchmark harness behind ``python -m repro bench``.

Runs the repo's micro-operation and routing benchmarks under a live
metrics registry and writes machine-readable ``BENCH_micro_ops.json`` and
``BENCH_routing.json`` snapshots (schema: metric name ->
``{count, mean, p50, p95, p99, min, max, total}``), so the performance
trajectory of the codebase accumulates across PRs instead of living only
in transient pytest-benchmark output.  ``python -m repro bench store``
additionally runs the location-store suite and writes
``BENCH_store.json`` (update throughput, update/lookup hop counts, and
objects migrated per adaptation).  ``python -m repro bench telemetry``
writes ``BENCH_telemetry.json``: gray-failure detection latency from the
chaos campaign, heartbeat digest byte overhead, and the wall-clock cost
of the in-band telemetry plane versus ``telemetry_enabled=False``.

The micro-ops run also measures the *instrumentation overhead*: the same
hot-path workload is timed with the no-op facade (collection off) and
with a live registry *plus* flight recorder, and the ratio is recorded as
``bench.overhead_ratio``.  The instrumentation contract is that this
stays below 1.10 (< 10% with everything on; disabled-mode cost stays
within measurement noise).

Every snapshot carries a ``_meta`` header (git SHA, UTC timestamp,
python version) so the accumulated ``BENCH_*.json`` files form a
comparable trajectory across PRs.  Consumers skip keys starting with
``_``.

Timings are wall-clock (``time.perf_counter``) and therefore noisy at the
microsecond scale; every timed section is repeated and the minimum kept,
the standard way to suppress scheduler noise in micro-benchmarks.
"""

from __future__ import annotations

import datetime
import gc
import json
import math
import os
import pathlib
import platform
import random
import subprocess
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.overlay import BasicGeoGrid
from repro.core.query import LocationQuery
from repro.core.node import Node
from repro.core.routing import (
    ShortcutTable,
    route_to_point,
    route_to_point_cached,
    stretch,
)
from repro.dualpeer import DualPeerGeoGrid
from repro.geometry import Point, Rect
from repro.loadbalance import AdaptationEngine, WorkloadIndexCalculator
from repro.obs.registry import MetricsRegistry
from repro.workload import GnutellaCapacityDistribution, HotspotField

#: The service area every benchmark uses (the paper's 64 mi x 64 mi).
BOUNDS = Rect(0, 0, 64, 64)

#: Default node population for the micro-ops benchmark.
MICRO_POPULATION = 600

#: Default populations swept by the routing benchmark.
ROUTING_POPULATIONS = (256, 1024)

#: Default node population for the store benchmark.
STORE_POPULATION = 400

#: Default moving-object population driven through the store benchmark.
STORE_OBJECTS = 256

#: Default movement steps (each object reports once per step).
STORE_STEPS = 12


def bench_meta() -> Dict[str, str]:
    """Provenance stamped into every ``BENCH_*.json`` under ``_meta``."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        sha = "unknown"
    return {
        "git_sha": sha,
        "timestamp_utc": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
        "python": platform.python_version(),
    }


def build_network(
    population: int, dual: bool = True, seed: int = 1
) -> Tuple[BasicGeoGrid, HotspotField, random.Random]:
    """A populated overlay under the experiment distributions.

    Mirrors the construction of ``benchmarks/test_micro_ops.py`` so the
    JSON trajectory and the pytest-benchmark numbers describe the same
    workload.
    """
    rng = random.Random(seed)
    field = HotspotField.random(BOUNDS, count=10, rng=rng)
    cls = DualPeerGeoGrid if dual else BasicGeoGrid
    grid = cls(BOUNDS, rng=random.Random(seed + 1), load_fn=field.region_load)
    capacities = GnutellaCapacityDistribution()
    for i in range(population):
        grid.join(
            Node(
                i,
                Point(rng.uniform(0.001, 64), rng.uniform(0.001, 64)),
                capacity=capacities.sample(rng),
            )
        )
    return grid, field, rng


def _random_points(rng: random.Random, count: int) -> List[Point]:
    return [
        Point(rng.uniform(0.001, 64), rng.uniform(0.001, 64))
        for _ in range(count)
    ]


def run_micro_ops(
    registry: MetricsRegistry,
    population: int = MICRO_POPULATION,
    points: int = 256,
    routes: int = 128,
    queries: int = 64,
    repeats: int = 3,
) -> None:
    """Record the micro-operation timings into ``registry``.

    Covers the building blocks every macro experiment is made of: overlay
    construction (joins), point location, region-load evaluation, routing,
    query fan-out, and one full adaptation round.  Batch timings land in
    ``micro.*`` histograms (milliseconds); the per-operation counters and
    hop histograms from the instrumented core land alongside them because
    the whole run executes under ``registry``.
    """
    with obs.capture(registry):
        for _ in range(repeats):
            start = time.perf_counter()
            grid, field, rng = build_network(population)
            registry.observe(
                "micro.build_ms", (time.perf_counter() - start) * 1e3
            )

        targets = _random_points(rng, points)
        for _ in range(repeats):
            start = time.perf_counter()
            for point in targets:
                grid.space.locate(point)
            registry.observe(
                "micro.locate_batch_ms", (time.perf_counter() - start) * 1e3
            )

        regions = list(grid.space.regions)
        for _ in range(repeats):
            start = time.perf_counter()
            total = 0.0
            for region in regions:
                total += field.region_load(region)
            registry.observe(
                "micro.region_load_batch_ms",
                (time.perf_counter() - start) * 1e3,
            )

        pairs = [(grid.random_node(), point) for point in _random_points(rng, routes)]
        for _ in range(repeats):
            start = time.perf_counter()
            for source, target in pairs:
                grid.route_from(source, target)
            registry.observe(
                "micro.route_batch_ms", (time.perf_counter() - start) * 1e3
            )

        requests = [
            LocationQuery.around(
                Point(rng.uniform(4, 60), rng.uniform(4, 60)),
                rng.uniform(1.0, 4.0),
                focal=grid.random_node(),
            )
            for _ in range(queries)
        ]
        for _ in range(repeats):
            start = time.perf_counter()
            for query in requests:
                grid.submit_query(query)
            registry.observe(
                "micro.query_batch_ms", (time.perf_counter() - start) * 1e3
            )

        start = time.perf_counter()
        calc = WorkloadIndexCalculator(grid, field.region_load)
        engine = AdaptationEngine(grid, calc)
        engine.run_round()
        registry.observe(
            "micro.adaptation_round_ms", (time.perf_counter() - start) * 1e3
        )


def run_routing(
    registry: MetricsRegistry,
    populations: Sequence[int] = ROUTING_POPULATIONS,
    samples: int = 200,
    warmup_routes: int = 400,
    shortcut_capacity: int = 32,
) -> None:
    """Record greedy vs shortcut-cached routing into ``registry``.

    One histogram pair per population (``routing.hops.n<N>`` and
    ``routing.stretch.n<N>``) is the machine-readable form of the
    paper's O(2*sqrt(N)) routing claim.  Each population then reruns the
    *same* source/target pairs through :func:`route_to_point_cached`
    against a :class:`~repro.core.routing.ShortcutTable` warmed by
    ``warmup_routes`` unrelated routes, recording
    ``routing.cached.hops.n<N>`` plus the cache's hit/miss/repair
    counters and hit rate -- the cached-vs-greedy comparison behind the
    adaptive shortcut cache.
    """
    with obs.capture(registry):
        for population in populations:
            grid, _, rng = build_network(population, dual=False, seed=7)
            hops_name = f"routing.hops.n{population}"
            stretch_name = f"routing.stretch.n{population}"
            pairs = []
            for _ in range(samples):
                source = grid.space.locate(
                    Point(rng.uniform(0.001, 64), rng.uniform(0.001, 64))
                )
                target = Point(rng.uniform(0.001, 64), rng.uniform(0.001, 64))
                pairs.append((source, target))
            for source, target in pairs:
                result = route_to_point(grid.space, source, target)
                registry.observe(hops_name, result.hops)
                quality = stretch(result)
                if quality is not None:
                    registry.observe(stretch_name, quality)

            # Cached pass over the *identical* pairs: warm the table with
            # unrelated traffic first (the steady-state a long-running
            # deployment converges to), then measure.
            table = ShortcutTable(capacity=shortcut_capacity)
            for _ in range(warmup_routes):
                source = grid.space.locate(
                    Point(rng.uniform(0.001, 64), rng.uniform(0.001, 64))
                )
                target = Point(rng.uniform(0.001, 64), rng.uniform(0.001, 64))
                route_to_point_cached(grid.space, source, target, table)
            table.reset_counters()
            cached_name = f"routing.cached.hops.n{population}"
            for source, target in pairs:
                result = route_to_point_cached(
                    grid.space, source, target, table
                )
                registry.observe(cached_name, result.hops)
            registry.inc(f"routing.shortcut.hits.n{population}", table.hits)
            registry.inc(
                f"routing.shortcut.misses.n{population}", table.misses
            )
            registry.inc(
                f"routing.shortcut.repairs.n{population}", table.repairs
            )
            registry.observe(
                f"routing.shortcut.hit_rate.n{population}", table.hit_rate
            )


def run_store_bench(
    registry: MetricsRegistry,
    population: int = STORE_POPULATION,
    objects: int = STORE_OBJECTS,
    steps: int = STORE_STEPS,
    lookups_per_step: int = 8,
    adaptation_rounds: int = 3,
    seed: int = 5,
) -> None:
    """Record the location-store benchmark into ``registry``.

    Drives a :class:`~repro.workload.moving.MovingObjectWorkload` through
    an :class:`~repro.store.overlay_store.OverlayStore` on a dual-peer
    overlay: every object reports its position each step (updates routed
    greedily to the covering region), interleaved with range lookups that
    follow the population.  Afterwards the adaptation engine runs with
    the store attached, so the records each executed mechanism moved land
    in the ``store.migrated_per_adaptation`` histogram plus per-mechanism
    and per-event counters.

    Headline metrics: ``store.updates_per_s`` (routed update throughput),
    ``store.update_hops`` / ``store.lookup_hops`` (routing cost per
    operation), and ``store.migrated_per_adaptation`` (state shipped per
    load-balance adaptation).
    """
    from repro.store import OverlayStore
    from repro.workload import MovingObjectWorkload

    with obs.capture(registry):
        grid, field, rng = build_network(population, dual=True, seed=seed)
        store = OverlayStore(grid)
        workload = MovingObjectWorkload(
            BOUNDS, population=objects, rng=random.Random(seed + 1)
        )
        origins = [grid.random_node() for _ in range(64)]

        def drive(reports) -> int:
            count = 0
            for report in reports:
                before = store.stats.update_hops
                store.update(
                    rng.choice(origins),
                    report.object_id,
                    report.point,
                    version=report.version,
                )
                registry.observe(
                    "store.update_hops", store.stats.update_hops - before
                )
                count += 1
            return count

        updates = 0
        update_s = 0.0
        start = time.perf_counter()
        updates += drive(workload.initial_reports())
        update_s += time.perf_counter() - start
        for _ in range(steps):
            start = time.perf_counter()
            updates += drive(workload.step())
            update_s += time.perf_counter() - start
            for _ in range(lookups_per_step):
                before = store.stats.lookup_hops
                found = store.lookup(
                    rng.choice(origins), workload.lookup_rect()
                )
                registry.observe(
                    "store.lookup_hops", store.stats.lookup_hops - before
                )
                registry.observe("store.lookup_results", len(found))
        registry.observe(
            "store.updates_per_s",
            updates / update_s if update_s > 0 else 0.0,
        )
        registry.observe("store.objects", store.object_count())

        calc = WorkloadIndexCalculator(grid, field.region_load)
        migrated_before = store.stats.migrated

        def per_adaptation(total: int, record) -> None:
            nonlocal migrated_before
            registry.observe(
                "store.migrated_per_adaptation",
                store.stats.migrated - migrated_before,
            )
            migrated_before = store.stats.migrated

        engine = AdaptationEngine(grid, calc, on_adaptation=per_adaptation)
        engine.ctx.store = store
        engine.run_rounds(adaptation_rounds)
        for mechanism, moved in sorted(engine.ctx.store_motion.items()):
            registry.observe(f"store.migrated.mech_{mechanism}", moved)
        for event, moved in sorted(store.stats.migrated_by_event.items()):
            registry.observe(f"store.migrated.event_{event}", moved)
        # The bench doubles as an invariant sweep: after all the churn,
        # every record must still be homed at the region covering it.
        store.check_placement()


def measure_overhead(
    population: int = 300,
    points: int = 512,
    repeats: int = 7,
) -> Dict[str, float]:
    """Time the instrumented micro-ops benchmark with collection off and on.

    The workload is the full micro-ops mix -- overlay construction, point
    location, region-load evaluation, routing, query fan-out, and one
    adaptation round -- every layer of which is instrumented.  The two
    modes are timed in alternation (``repeats`` runs each, GC paused
    during the timed section) and the minimum of each kept, so transient
    machine load hits both sides equally instead of biasing the ratio.
    Returns ``{"noop_s", "instrumented_s", "ratio"}``.
    """
    probe_rng = random.Random(11)
    targets = _random_points(probe_rng, points)
    pair_targets = _random_points(probe_rng, points // 2)
    query_specs = [
        (
            Point(probe_rng.uniform(4, 60), probe_rng.uniform(4, 60)),
            probe_rng.uniform(1.0, 4.0),
        )
        for _ in range(points // 4)
    ]

    def workload() -> None:
        grid, field, _ = build_network(population, seed=11)
        for point in targets:
            grid.space.locate(point)
        for region in grid.space.regions:
            field.region_load(region)
        for target in pair_targets:
            grid.route_from(grid.random_node(), target)
        for center, radius in query_specs:
            grid.submit_query(
                LocationQuery.around(center, radius, focal=grid.random_node())
            )
        calc = WorkloadIndexCalculator(grid, field.region_load)
        AdaptationEngine(grid, calc).run_round()

    def timed_once() -> float:
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            workload()
            return time.perf_counter() - start
        finally:
            if gc_was_enabled:
                gc.enable()

    previous = obs.active()
    previous_recorder = obs.flightrec()
    obs.disable()
    obs.disable_flightrec()
    try:
        workload()  # warm allocators and code paths outside the timing
        noop_s = math.inf
        instrumented_s = math.inf
        for _ in range(repeats):
            obs.disable()
            noop_s = min(noop_s, timed_once())
            # The instrumented side carries the full stack: metrics
            # registry *and* flight recorder (the journal sites in the
            # core fire too), so the measured ratio bounds the cost of
            # turning everything on.
            obs.enable()
            obs.enable_flightrec()
            try:
                instrumented_s = min(instrumented_s, timed_once())
            finally:
                obs.disable()
                obs.disable_flightrec()
    finally:
        if previous is not None:
            obs.enable(previous)
        else:
            obs.disable()
        if previous_recorder is not None:
            obs.enable_flightrec(previous_recorder)
        else:
            obs.disable_flightrec()
    return {
        "noop_s": noop_s,
        "instrumented_s": instrumented_s,
        "ratio": instrumented_s / noop_s if noop_s > 0 else 1.0,
    }


def write_bench_files(
    out_dir: pathlib.Path,
    population: int = MICRO_POPULATION,
    routing_populations: Sequence[int] = ROUTING_POPULATIONS,
    samples: int = 200,
    overhead: Optional[Dict[str, float]] = None,
) -> List[pathlib.Path]:
    """Run both benchmarks and write the ``BENCH_*.json`` snapshots.

    Returns the written paths (``BENCH_micro_ops.json`` first).  Pass a
    precomputed ``overhead`` dict to skip re-measuring it (tests do, to
    stay fast).
    """
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    meta = bench_meta()

    micro = MetricsRegistry()
    run_micro_ops(micro, population=population)
    if overhead is None:
        overhead = measure_overhead()
    micro.observe("bench.overhead_ratio", overhead["ratio"])
    micro.observe("bench.overhead_noop_ms", overhead["noop_s"] * 1e3)
    micro.observe(
        "bench.overhead_instrumented_ms", overhead["instrumented_s"] * 1e3
    )
    micro_path = out_dir / "BENCH_micro_ops.json"
    micro_path.write_text(_stamped_json(micro, meta) + "\n")

    routing = MetricsRegistry()
    run_routing(routing, populations=routing_populations, samples=samples)
    routing_path = out_dir / "BENCH_routing.json"
    routing_path.write_text(_stamped_json(routing, meta) + "\n")

    return [micro_path, routing_path]


def write_routing_bench_file(
    out_dir: pathlib.Path,
    populations: Sequence[int] = ROUTING_POPULATIONS,
    samples: int = 200,
    warmup_routes: int = 400,
    shortcut_capacity: int = 32,
) -> List[pathlib.Path]:
    """Run the routing comparison and write ``BENCH_routing.json``.

    Returns the written path in a one-element list (same shape as
    :func:`write_bench_files`, so callers can concatenate and feed
    :func:`render_report`).
    """
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    registry = MetricsRegistry()
    run_routing(
        registry,
        populations=populations,
        samples=samples,
        warmup_routes=warmup_routes,
        shortcut_capacity=shortcut_capacity,
    )
    path = out_dir / "BENCH_routing.json"
    path.write_text(_stamped_json(registry, bench_meta()) + "\n")
    return [path]


def write_store_bench_file(
    out_dir: pathlib.Path,
    population: int = STORE_POPULATION,
    objects: int = STORE_OBJECTS,
    steps: int = STORE_STEPS,
    adaptation_rounds: int = 3,
) -> List[pathlib.Path]:
    """Run the store benchmark and write ``BENCH_store.json``.

    Returns the written path in a one-element list (same shape as
    :func:`write_bench_files`, so callers can concatenate and feed
    :func:`render_report`).
    """
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    registry = MetricsRegistry()
    run_store_bench(
        registry,
        population=population,
        objects=objects,
        steps=steps,
        adaptation_rounds=adaptation_rounds,
    )
    path = out_dir / "BENCH_store.json"
    path.write_text(_stamped_json(registry, bench_meta()) + "\n")
    return [path]


def run_telemetry_bench(
    registry: MetricsRegistry,
    seed: int = 7,
    population: int = 8,
    objects: int = 8,
    skip_overhead: bool = False,
    scenarios: Optional[Sequence[str]] = None,
) -> None:
    """Record the telemetry-plane benchmark into ``registry``.

    Three claims of the in-band telemetry PR, each made machine-checkable:

    * **Detection**: the chaos campaign's gray-failure scenario must flag
      the injected gray node in-band within the tick budget
      (``telemetry.detection.detected`` = 1, ``.ticks`` <= ``.budget``)
      with zero false positives across every other scenario
      (``telemetry.detection.false_positives`` = 0).
    * **Digest size**: heartbeat piggybacks stay bounded
      (``telemetry.digest.bytes_max`` <= ``.byte_budget``).
    * **Overhead**: the plane costs < 10% wall-clock on the routing and
      store workloads (``telemetry.overhead.*.ratio`` < 1.10).

    Plus the client-edge SLO latency snapshot of a settled demo cluster
    (``telemetry.slo.*``), the numbers the dashboard tiles show.
    """
    from repro.obs.telemetry import (
        cluster_sample,
        demo_cluster,
        drive_traffic,
        measure_digest_overhead,
        measure_telemetry_overhead,
    )
    from repro.sim.chaos import ChaosConfig, run_campaign

    config = ChaosConfig(
        seed=seed, population=population, objects=objects, recovery=160.0
    )
    report = run_campaign(config, scenarios=scenarios)
    false_positives = 0
    for result in report.results:
        registry.set_gauge(
            f"telemetry.campaign.{result.name}_ok", 1.0 if result.ok else 0.0
        )
        false_positives += len(result.false_positives)
        if result.gray_expected is not None:
            detected = result.detect_ticks is not None
            registry.set_gauge(
                "telemetry.detection.detected", 1.0 if detected else 0.0
            )
            if detected:
                registry.set_gauge(
                    "telemetry.detection.ticks", result.detect_ticks
                )
            registry.set_gauge(
                "telemetry.detection.budget", result.detect_budget
            )
    registry.set_gauge("telemetry.detection.false_positives", false_positives)

    digest = measure_digest_overhead(seed=seed, population=population)
    registry.set_gauge("telemetry.digest.bytes_mean", digest["bytes_mean"])
    registry.set_gauge("telemetry.digest.bytes_max", digest["bytes_max"])
    registry.set_gauge("telemetry.digest.byte_budget", digest["byte_budget"])
    registry.set_gauge(
        "telemetry.digest.within_budget",
        1.0 if digest["within_budget"] else 0.0,
    )

    if not skip_overhead:
        overhead = measure_telemetry_overhead(seed=seed)
        for workload, row in sorted(overhead.items()):
            for key, value in sorted(row.items()):
                registry.set_gauge(
                    f"telemetry.overhead.{workload}.{key}", value
                )

    cluster, rng = demo_cluster(seed=seed, population=population)
    drive_traffic(cluster, rng, duration=30.0, operations=12)
    sample = cluster_sample(cluster)
    for name, row in sorted(sample["slo"].items()):
        for key in ("count", "p50", "p95", "p99"):
            registry.set_gauge(f"telemetry.{name}.{key}", row[key])
    registry.set_gauge("telemetry.flagged_nodes", len(sample["flagged"]))


def write_telemetry_bench_file(
    out_dir: pathlib.Path,
    seed: int = 7,
    population: int = 8,
    objects: int = 8,
    skip_overhead: bool = False,
    scenarios: Optional[Sequence[str]] = None,
) -> List[pathlib.Path]:
    """Run the telemetry benchmark and write ``BENCH_telemetry.json``.

    Returns the written path in a one-element list (same shape as
    :func:`write_bench_files`, so callers can concatenate and feed
    :func:`render_report`).
    """
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    registry = MetricsRegistry()
    run_telemetry_bench(
        registry,
        seed=seed,
        population=population,
        objects=objects,
        skip_overhead=skip_overhead,
        scenarios=scenarios,
    )
    path = out_dir / "BENCH_telemetry.json"
    path.write_text(_stamped_json(registry, bench_meta()) + "\n")
    return [path]


def run_pubsub_bench(
    registry: MetricsRegistry,
    seed: int = 7,
    population: int = 10,
    objects: int = 16,
    recovery: float = 200.0,
    skip_overhead: bool = False,
    scenarios: Optional[Sequence[str]] = None,
) -> None:
    """Record the subscription-plane benchmark into ``registry``.

    Two claims of the continuous-query PR, each made machine-checkable:

    * **Loss-free delivery**: the pubsub chaos campaign -- every plain
      scenario re-run with live registrations and oracle-checked publish
      bursts before, during, and after the faults -- must lose zero
      committed notifications and leave zero persistent audit violations
      (``pubsub.verdict.loss_free`` = 1).
    * **Overhead**: a cluster serving standing queries costs < 1.10x
      wall-clock on the routing and store workloads vs a build with
      ``NodeConfig.sub_enabled`` off (``pubsub.overhead.*.ratio`` <
      ``pubsub.overhead.budget``).

    Plus a settled demo cluster driven by the shared
    :class:`~repro.workload.subscriptions.SubscriptionWorkload` trace,
    snapshotting the client-edge subscription SLOs the dashboard tiles
    show (``pubsub.slo.sub.*``).
    """
    from repro.obs.telemetry import cluster_sample, demo_cluster
    from repro.sim.chaos import ChaosConfig, run_pubsub_campaign
    from repro.sub.bench import SUB_OVERHEAD_BUDGET, measure_sub_overhead
    from repro.workload.subscriptions import SubscriptionWorkload

    config = ChaosConfig(
        seed=seed, population=population, objects=objects, recovery=recovery
    )
    report = run_pubsub_campaign(config, scenarios=scenarios)
    expected = 0
    lost = 0
    violations = 0
    for result in report.results:
        registry.set_gauge(
            f"pubsub.campaign.{result.name}_ok", 1.0 if result.ok else 0.0
        )
        expected += result.expected_notifications
        lost += result.lost_notifications
        violations += len(result.violations)
    registry.set_gauge("pubsub.campaign.ok", 1.0 if report.ok else 0.0)
    registry.set_gauge("pubsub.campaign.violations", violations)
    registry.set_gauge("pubsub.notify.expected", expected)
    registry.set_gauge("pubsub.notify.delivered", expected - lost)
    registry.set_gauge("pubsub.notify.lost", lost)
    registry.set_gauge(
        "pubsub.verdict.loss_free",
        1.0 if report.ok and lost == 0 and expected > 0 else 0.0,
    )

    if not skip_overhead:
        overhead = measure_sub_overhead(seed=seed)
        within = all(
            row["ratio"] < SUB_OVERHEAD_BUDGET for row in overhead.values()
        )
        for workload, row in sorted(overhead.items()):
            for key, value in sorted(row.items()):
                registry.set_gauge(f"pubsub.overhead.{workload}.{key}", value)
        registry.set_gauge("pubsub.overhead.budget", SUB_OVERHEAD_BUDGET)
        registry.set_gauge(
            "pubsub.overhead.within_budget", 1.0 if within else 0.0
        )

    cluster, _ = demo_cluster(seed=seed, population=population)
    workload = SubscriptionWorkload(
        cluster.bounds,
        subscriptions=4,
        rng=random.Random(f"{seed}:bench:pubsub"),
        duration=1_000_000.0,
        hit_ratio=0.7,
    )
    live = sorted(
        (n for n in cluster.nodes.values() if n.alive and n.joined),
        key=lambda n: (n.address.ip, n.address.port),
    )
    for op in workload.initial_subscriptions():
        origin = live[op.subscriber % len(live)]
        cluster.subscribe(origin.node.node_id, op.rect, duration=op.duration)
    cluster.settle(10.0)
    for op in workload.publish_step(count=8):
        origin = live[op.publisher % len(live)]
        origin.publish(op.point, op.payload)
        cluster.run_for(5.0)
    registry.set_gauge(
        "pubsub.demo.delivered",
        sum(len(n.notifications) for n in cluster.nodes.values()),
    )
    sample = cluster_sample(cluster)
    for name, row in sorted(sample["slo"].items()):
        if not name.startswith("slo.sub."):
            continue
        for key in ("count", "p50", "p95", "p99"):
            registry.set_gauge(f"pubsub.{name}.{key}", row[key])


def write_pubsub_bench_file(
    out_dir: pathlib.Path,
    seed: int = 7,
    population: int = 10,
    objects: int = 16,
    recovery: float = 200.0,
    skip_overhead: bool = False,
    scenarios: Optional[Sequence[str]] = None,
) -> List[pathlib.Path]:
    """Run the pubsub benchmark and write ``BENCH_pubsub.json``.

    Returns the written path in a one-element list (same shape as
    :func:`write_bench_files`, so callers can concatenate and feed
    :func:`render_report`).
    """
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    registry = MetricsRegistry()
    run_pubsub_bench(
        registry,
        seed=seed,
        population=population,
        objects=objects,
        recovery=recovery,
        skip_overhead=skip_overhead,
        scenarios=scenarios,
    )
    path = out_dir / "BENCH_pubsub.json"
    path.write_text(_stamped_json(registry, bench_meta()) + "\n")
    return [path]


def run_overload_bench(
    registry: MetricsRegistry,
    seed: int = 7,
    population: int = 10,
    objects: int = 16,
    recovery: float = 200.0,
    skip_overhead: bool = False,
) -> None:
    """Record the overload-plane benchmark into ``registry``.

    Two claims of the overload-control PR, each made machine-checkable:

    * **Graceful degradation**: the flash_crowd chaos scenario -- a 10x
      query storm at the weakest primary with ``overload_enabled`` on --
      must shed data-plane traffic while losing zero committed store
      objects, shedding zero control-class messages, leaving zero
      persistent audit violations, and keeping every per-node ingress
      queue under its bound (``overload.bench.ok`` = 1).
    * **Overhead**: a cluster with admission control enabled but not
      under storm costs < 1.10x wall-clock on the routing and store
      workloads vs ``overload_enabled=False``
      (``overload.overhead.*.ratio`` < ``overload.overhead.budget``).
    """
    from repro.protocol.overload import (
        OVERLOAD_OVERHEAD_BUDGET,
        measure_overload_overhead,
    )
    from repro.sim.chaos import ChaosConfig, run_scenario

    config = ChaosConfig(
        seed=seed, population=population, objects=objects, recovery=recovery
    )
    result = run_scenario("flash_crowd", config)
    registry.set_gauge("overload.bench.ok", 1.0 if result.ok else 0.0)
    registry.set_gauge("overload.bench.violations", len(result.violations))
    registry.set_gauge("overload.bench.lost_objects", result.lost_objects)
    registry.set_gauge("overload.bench.sheds", result.sheds)
    registry.set_gauge("overload.bench.deflections", result.deflections)
    registry.set_gauge("overload.bench.control_sheds", result.control_sheds)
    registry.set_gauge("overload.bench.peak_queue", result.peak_queue_depth)
    registry.set_gauge("overload.bench.queue_bound", result.queue_bound)
    registry.set_gauge("overload.bench.sim_time", result.sim_time)

    if not skip_overhead:
        overhead = measure_overload_overhead(seed=seed)
        within = all(
            row["ratio"] < OVERLOAD_OVERHEAD_BUDGET
            for row in overhead.values()
        )
        for workload, row in sorted(overhead.items()):
            for key, value in sorted(row.items()):
                registry.set_gauge(
                    f"overload.overhead.{workload}.{key}", value
                )
        registry.set_gauge(
            "overload.overhead.budget", OVERLOAD_OVERHEAD_BUDGET
        )
        registry.set_gauge(
            "overload.overhead.within_budget", 1.0 if within else 0.0
        )


def write_overload_bench_file(
    out_dir: pathlib.Path,
    seed: int = 7,
    population: int = 10,
    objects: int = 16,
    recovery: float = 200.0,
    skip_overhead: bool = False,
) -> List[pathlib.Path]:
    """Run the overload benchmark and write ``BENCH_overload.json``.

    Returns the written path in a one-element list (same shape as
    :func:`write_bench_files`).
    """
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    registry = MetricsRegistry()
    run_overload_bench(
        registry,
        seed=seed,
        population=population,
        objects=objects,
        recovery=recovery,
        skip_overhead=skip_overhead,
    )
    path = out_dir / "BENCH_overload.json"
    path.write_text(_stamped_json(registry, bench_meta()) + "\n")
    return [path]


def _stamped_json(registry: MetricsRegistry, meta: Dict[str, str]) -> str:
    """The registry snapshot as JSON with the ``_meta`` header first."""
    payload: Dict[str, object] = {"_meta": meta}
    payload.update(json.loads(registry.to_json()))
    return json.dumps(payload, indent=2, sort_keys=False)


def render_report(paths: Sequence[pathlib.Path]) -> str:
    """A human-readable digest of freshly written ``BENCH_*.json`` files."""
    lines = ["Benchmark snapshots"]
    for path in paths:
        snapshot = json.loads(path.read_text())
        meta = snapshot.get("_meta", {})
        metrics = {
            name: row
            for name, row in snapshot.items()
            if not name.startswith("_")
        }
        header = f"\n{path.name} ({len(metrics)} metrics"
        if meta:
            header += (
                f"; {meta.get('git_sha', '?')[:12]} "
                f"@ {meta.get('timestamp_utc', '?')} "
                f"py{meta.get('python', '?')}"
            )
        lines.append(header + "):")
        for name, row in metrics.items():
            lines.append(
                f"  {name:<38} count={row['count']:<8g} "
                f"mean={row['mean']:<12.4g} p50={row['p50']:<12.4g} "
                f"p95={row['p95']:<12.4g} p99={row['p99']:.4g}"
            )
    return "\n".join(lines)
