"""Metric export: Prometheus text exposition and JSONL time series.

Everything the repo measures stays machine-readable, but until now the
only formats were the ``BENCH_*.json`` snapshot schema and the flight
recorder's journal.  This module renders the two remaining lingua
francas -- used by ``python -m repro export`` and asserted by the CI
telemetry smoke job:

* :func:`registry_to_prometheus` -- a
  :class:`~repro.obs.registry.MetricsRegistry` in the Prometheus text
  exposition format (version 0.0.4): counters as ``_total`` counters,
  gauges as gauges, histograms as summaries with quantile labels.
* :func:`sample_to_prometheus` -- one :func:`~repro.obs.telemetry.cluster_sample`
  as per-node gauges (labelled ``{node="ip:port"}``) plus cluster-rate
  and SLO-summary series.
* :func:`samples_to_jsonl` -- a sequence of cluster samples as JSON
  Lines, the append-friendly time-series form the dashboards and
  notebooks consume.

All three are pure functions of their inputs: no clock reads, no global
state, so exports are as deterministic as the registries and samples
they render.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, List

from repro.obs.registry import MetricsRegistry

__all__ = [
    "prometheus_name",
    "registry_to_prometheus",
    "sample_to_prometheus",
    "samples_to_jsonl",
]

#: Characters Prometheus allows in a metric name.
_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: The per-node numeric fields of a cluster sample row exported as
#: labelled gauges (field name -> help text).
_NODE_FIELDS = {
    "sent_rate": "messages sent per sim-second over the last vitals window",
    "recv_rate": "messages received per sim-second over the last window",
    "retry_rate": "reliable-layer retransmits per sim-second",
    "dead_letters": "reliable exchanges abandoned (lifetime)",
    "store_size": "location objects held by the node's store",
    "anti_entropy_debt": "replica buckets awaiting anti-entropy repair",
    "shortcut_hit_rate": "routing shortcut cache hit rate over the window",
    "handler_ms": "mean handler wall-time (ms) over the window",
    "queue_depth": "messages in flight toward the node",
    "digest_bytes": "wire size of the node's last vitals digest",
    "peers_tracked": "peers in the node's neighborhood health view",
}


def prometheus_name(dotted: str, namespace: str = "repro") -> str:
    """``layer.component.metric`` -> ``namespace_layer_component_metric``."""
    flat = _NAME_OK.sub("_", dotted)
    if namespace:
        flat = f"{namespace}_{flat}"
    if flat and flat[0].isdigit():
        flat = f"_{flat}"
    return flat


def _fmt(value: float) -> str:
    """Prometheus sample value: integers stay integral, floats repr()."""
    number = float(value)
    if number.is_integer():
        return str(int(number))
    return repr(number)


def registry_to_prometheus(
    registry: MetricsRegistry, namespace: str = "repro"
) -> str:
    """The registry in Prometheus text exposition format.

    Counters keep their monotone semantics (``_total`` suffix, TYPE
    counter); histograms become summaries: ``{quantile=...}`` series from
    the deterministic reservoir plus exact ``_sum`` and ``_count``.
    """
    lines: List[str] = []
    for counter in registry.counters():
        name = prometheus_name(counter.name, namespace) + "_total"
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_fmt(counter.value)}")
    for gauge in registry.gauges():
        name = prometheus_name(gauge.name, namespace)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(gauge.value)}")
    for histogram in registry.histograms():
        name = prometheus_name(histogram.name, namespace)
        summary = histogram.summary()
        lines.append(f"# TYPE {name} summary")
        for quantile, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            lines.append(
                f'{name}{{quantile="{quantile}"}} {_fmt(summary[key])}'
            )
        lines.append(f"{name}_sum {_fmt(histogram.total)}")
        lines.append(f"{name}_count {_fmt(histogram.count)}")
    return "\n".join(lines) + "\n" if lines else ""


def sample_to_prometheus(
    sample: Dict[str, Any], namespace: str = "repro"
) -> str:
    """One cluster telemetry sample in Prometheus text format.

    Per-node vitals become gauges labelled by node address; cluster-wide
    rates, SLO summaries, and the gray-flag count ride alongside, so one
    scrape of the export file carries the whole dashboard state.
    """
    lines: List[str] = []

    def gauge(dotted: str, value: float, label: str = "") -> None:
        name = prometheus_name(dotted, namespace)
        lines.append(f"{name}{label} {_fmt(value)}")

    gauge("cluster.time", sample.get("time", 0.0))
    for field, help_text in _NODE_FIELDS.items():
        name = prometheus_name(f"node.{field}", namespace)
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} gauge")
        for row in sample.get("nodes", ()):
            lines.append(
                f'{name}{{node="{row["address"]}"}} {_fmt(row[field])}'
            )
    for kind, value in sorted(sample.get("rates", {}).items()):
        gauge(f"cluster.{kind}_rate", value)
    gauge("cluster.flagged", len(sample.get("flagged", ())))
    for slo_name, summary in sorted(sample.get("slo", {}).items()):
        name = prometheus_name(slo_name, namespace)
        lines.append(f"# TYPE {name} summary")
        for quantile, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            lines.append(
                f'{name}{{quantile="{quantile}"}} {_fmt(summary[key])}'
            )
        lines.append(f"{name}_count {_fmt(summary['count'])}")
    return "\n".join(lines) + "\n" if lines else ""


def samples_to_jsonl(samples: Iterable[Dict[str, Any]]) -> str:
    """Cluster samples as JSON Lines (one compact object per line)."""
    return "".join(
        json.dumps(sample, sort_keys=True, separators=(",", ":")) + "\n"
        for sample in samples
    )
