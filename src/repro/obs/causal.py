"""Span-based causal tracing over the protocol and simulation layers.

Every protocol interaction -- a routed request, a join, a split or
hole-grant, a load-balance switch -- is a *trace*: a tree of *spans*
rooted at the operation that started it.  Each message in flight is one
span; protocol decisions made while handling a message are annotations on
that message's span; messages sent while handling it become child spans.
The result: a completed request yields a hop-by-hop span tree with
latency, drop, and retry attribution, reconstructable from the flight
recorder journal alone (:func:`build_trace` / :func:`render_trace`).

Propagation is cooperative and cheap:

* the transport stamps every sent message with a
  :class:`SpanContext` derived from the sender's current context and
  installs the message's own context around delivery;
* the scheduler captures the current context when a one-shot event is
  scheduled and restores it around the callback, so timer-driven retries
  (a re-issued join, a route retransmit) stay attributed to the operation
  that armed them;
* *periodic* timers (heartbeats, sync, failure sweeps) deliberately run
  detached -- they are causal roots, otherwise every heartbeat for the
  rest of the run would accrete onto whichever join trace started the
  timer.

The context is a single module global (the simulation is single-threaded
by construction), ``None`` whenever tracing is off; every helper here
no-ops unless a :class:`~repro.obs.flightrec.FlightRecorder` is installed
via :func:`repro.obs.enable_flightrec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro import obs

__all__ = [
    "Span",
    "SpanContext",
    "annotate",
    "build_trace",
    "current",
    "detach",
    "operation",
    "render_trace",
    "restore",
    "trace_ids",
    "using",
]


@dataclass(frozen=True)
class SpanContext:
    """The causal coordinates of the work currently executing."""

    __slots__ = ("trace_id", "span_id")

    trace_id: int
    span_id: int


#: The active causal context; ``None`` whenever tracing is off.
_current: Optional[SpanContext] = None


def current() -> Optional[SpanContext]:
    """The active span context, or ``None`` (tracing off / causal root)."""
    return _current


def detach() -> Optional[SpanContext]:
    """Clear the active context and return what it was.

    Used by periodic timers to run as causal roots; pair with
    :func:`restore`.
    """
    global _current
    previous = _current
    _current = None
    return previous


def restore(previous: Optional[SpanContext]) -> None:
    """Reinstall a context saved by :func:`detach`."""
    global _current
    _current = previous


class using:
    """Context manager installing ``ctx`` as the active span context.

    ``using(None)`` is a cheap no-op (the previous context stays), so
    call sites can write ``with using(maybe_ctx):`` unconditionally.
    Hand-rolled rather than ``@contextmanager`` because it sits on the
    message-delivery hot path.
    """

    __slots__ = ("_ctx", "_previous")

    def __init__(self, ctx: Optional[SpanContext]) -> None:
        self._ctx = ctx

    def __enter__(self) -> Optional[SpanContext]:
        global _current
        self._previous = _current
        if self._ctx is not None:
            _current = self._ctx
        return self._ctx

    def __exit__(self, *exc: object) -> None:
        global _current
        _current = self._previous


def operation(
    kind: str, t: Optional[float] = None, /, **fields: object
) -> Optional[SpanContext]:
    """Open an operation span and return its context (``None`` when off).

    Called at protocol entry points (``send_to_point``, ``start_join``,
    ``query_rect``...).  Outside any context the operation roots a fresh
    trace; inside one (a rejoin triggered by a heartbeat, a retry fired
    by a timer) it becomes a child span, preserving the causal chain that
    PR-2-style forensics need.  Wrap the operation's sends in
    ``with using(ctx):`` so they become children of the span.
    """
    recorder = obs.flightrec()
    if recorder is None:
        return None
    parent = _current
    trace_id = (
        parent.trace_id if parent is not None else recorder.next_trace_id()
    )
    span_id = recorder.next_span_id()
    recorder.record(
        kind,
        t,
        op=True,
        trace_id=trace_id,
        span_id=span_id,
        parent_span=parent.span_id if parent is not None else None,
        **fields,
    )
    return SpanContext(trace_id, span_id)


def annotate(kind: str, t: Optional[float] = None, /, **fields: object) -> None:
    """Attach an event to the current span (or record it unattributed).

    This is what protocol decision sites call: a hole-grant recorded while
    handling a join request lands on that request's span, so the span tree
    names the decision *and* the message chain that led to it.
    """
    recorder = obs.flightrec()
    if recorder is None:
        return
    ctx = _current
    if ctx is not None:
        recorder.record(
            kind, t, trace_id=ctx.trace_id, span_id=ctx.span_id, **fields
        )
    else:
        recorder.record(kind, t, **fields)


# ----------------------------------------------------------------------
# Span-tree reconstruction from journal events
# ----------------------------------------------------------------------
@dataclass
class Span:
    """One node of a reconstructed trace tree."""

    span_id: int
    trace_id: int
    parent_span: Optional[int]
    kind: str
    start: float
    end: Optional[float] = None
    #: ``"op"`` for operation spans; message spans progress through
    #: ``"sent"`` -> ``"delivered"`` or ``"dropped:<reason>"``.
    status: str = "op"
    msg_id: Optional[int] = None
    source: Optional[str] = None
    destination: Optional[str] = None
    annotations: List[Mapping[str, object]] = field(default_factory=list)
    children: List["Span"] = field(default_factory=list)

    @property
    def latency(self) -> Optional[float]:
        """Send-to-delivery latency, when the span completed."""
        if self.end is None:
            return None
        return self.end - self.start


def trace_ids(events: Iterable[Mapping[str, object]]) -> List[int]:
    """Distinct trace ids present in ``events``, in first-seen order."""
    seen: Dict[int, None] = {}
    for event in events:
        trace = event.get("trace_id")
        if isinstance(trace, int) and trace not in seen:
            seen[trace] = None
    return list(seen)


def build_trace(
    events: Iterable[Mapping[str, object]], trace_id: int
) -> List[Span]:
    """Rebuild the span tree of one trace from journal events.

    Returns the root spans (usually one; several when the journal ring
    evicted the root and orphaned subtrees survive).  Annotations whose
    span fell out of the ring are attached to a synthetic ``(evicted)``
    span so nothing silently disappears.
    """
    spans: Dict[int, Span] = {}
    loose: List[Mapping[str, object]] = []
    for event in events:
        if event.get("trace_id") != trace_id:
            continue
        kind = str(event.get("kind"))
        span_id = event.get("span_id")
        if kind == "send":
            spans[int(span_id)] = Span(  # type: ignore[arg-type]
                span_id=int(span_id),  # type: ignore[arg-type]
                trace_id=trace_id,
                parent_span=event.get("parent_span"),  # type: ignore[arg-type]
                kind=str(event.get("msg_kind", "?")),
                start=float(event.get("t", 0.0)),
                status="sent",
                msg_id=event.get("msg_id"),  # type: ignore[arg-type]
                source=str(event.get("source")),
                destination=str(event.get("destination")),
            )
        elif event.get("op") and span_id is not None:
            payload = {
                key: value
                for key, value in event.items()
                if key not in (
                    "t", "seq", "kind", "op",
                    "trace_id", "span_id", "parent_span",
                )
            }
            spans[int(span_id)] = Span(  # type: ignore[arg-type]
                span_id=int(span_id),  # type: ignore[arg-type]
                trace_id=trace_id,
                parent_span=event.get("parent_span"),  # type: ignore[arg-type]
                kind=kind,
                start=float(event.get("t", 0.0)),
                status="op",
                annotations=(
                    [dict(payload, kind="args", t=event.get("t", 0.0))]
                    if payload
                    else []
                ),
            )
        else:
            loose.append(event)

    evicted: Optional[Span] = None
    for event in loose:
        kind = str(event.get("kind"))
        span_id = event.get("span_id")
        span = spans.get(span_id) if isinstance(span_id, int) else None
        if kind == "deliver" and span is not None:
            span.end = float(event.get("t", 0.0))
            span.status = "delivered"
        elif kind == "drop" and span is not None:
            span.end = float(event.get("t", 0.0))
            span.status = f"dropped:{event.get('reason', '?')}"
        elif span is not None:
            span.annotations.append(event)
        else:
            if evicted is None:
                evicted = Span(
                    span_id=-1,
                    trace_id=trace_id,
                    parent_span=None,
                    kind="(evicted)",
                    start=float(event.get("t", 0.0)),
                )
            evicted.annotations.append(event)

    roots: List[Span] = []
    for span in spans.values():
        parent = (
            spans.get(span.parent_span)
            if isinstance(span.parent_span, int)
            else None
        )
        if parent is not None:
            parent.children.append(span)
        else:
            roots.append(span)
    for span in spans.values():
        span.children.sort(key=lambda child: (child.start, child.span_id))
        span.annotations.sort(
            key=lambda a: (float(a.get("t", 0.0)), a.get("seq", 0))
        )
    roots.sort(key=lambda span: (span.start, span.span_id))
    if evicted is not None:
        roots.append(evicted)
    return roots


def _span_line(span: Span) -> str:
    if span.status == "op":
        line = f"{span.kind} t={span.start:g}"
    else:
        line = f"{span.kind} {span.source} -> {span.destination}"
        if span.msg_id is not None:
            line += f" (msg {span.msg_id})"
        line += f" t={span.start:g}"
        if span.status == "delivered":
            line += f" delivered +{span.latency:g}"
        elif span.status.startswith("dropped"):
            line += f" {span.status.upper()}"
        else:
            line += " (in flight)"
    for annotation in span.annotations:
        fields = " ".join(
            f"{key}={value}"
            for key, value in annotation.items()
            if key not in ("t", "seq", "kind", "trace_id", "span_id",
                           "parent_span", "msg_id")
        )
        kind = annotation.get("kind")
        line += f"\n  * {kind}" + (f" ({fields})" if fields else "")
    return line


def render_trace(roots: List[Span]) -> str:
    """ASCII tree of a reconstructed trace (one line per span hop)."""
    if not roots:
        return "(empty trace)"
    lines: List[str] = []

    def walk(span: Span, prefix: str, tail: str) -> None:
        text = _span_line(span).split("\n")
        lines.append(prefix + tail + text[0])
        extension = "   " if tail in ("", "`- ") else "|  "
        for extra in text[1:]:
            lines.append(prefix + (extension if tail else "") + extra)
        for index, child in enumerate(span.children):
            last = index == len(span.children) - 1
            walk(
                child,
                prefix + (extension if tail else ""),
                "`- " if last else "|- ",
            )

    for root in roots:
        walk(root, "", "")
    return "\n".join(lines)
