"""Neighborhood health views and gray-failure scoring.

The receiving half of the in-band telemetry plane
(:mod:`repro.obs.telemetry` is the sending half).  Each protocol node
folds the :class:`~repro.obs.telemetry.VitalsDigest` piggybacked on its
neighbors' heartbeats -- plus its own reliable-channel evidence (retries,
dead letters, ack round-trips attributed per destination) -- into a
bounded, decaying :class:`NeighborHealthView`.  A :class:`HealthScorer`
then flags *gray* peers: nodes that are alive enough to keep
heartbeating but whose links quietly eat or delay traffic.

Why this is hard: a **crashed** node goes silent, a **partitioned** one
disappears in one direction, and ambient loss degrades *everyone*
symmetrically.  None of those may be flagged (the chaos campaigns demand
zero false positives outside the gray scenario).  The scorer therefore
requires all of:

* **freshness** -- the peer must still be heard from (silent nodes are
  the classic failure detector's job, not ours);
* **corroboration** -- at least two distinct observers must attribute
  trouble to the peer.  Local evidence counts as one observer when it
  clears the gossip floor; the rest arrive as ``suspects`` entries in
  neighbor digests, discounted by how many peers the reporter blames at
  once (a node that blames everyone is itself the likely problem);
* **relative deviation** -- the peer's combined score must stand out
  against the neighborhood median, so a symmetric drop/latency storm
  that elevates every score flags nobody.

All state decays (exponential, seeded deterministic tie-breaking, no
shared rng draws), so views converge back to quiet after faults heal.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.node import NodeAddress
from repro.obs.telemetry import MAX_SUSPECTS, VitalsDigest

__all__ = [
    "HealthScorer",
    "NeighborHealthView",
    "PeerObservation",
]

#: Per-peer cap on remembered third-party reports.
REPORT_CAPACITY = 8


def _address_key(address: NodeAddress) -> Tuple[str, int]:
    return (address.ip, address.port)


class PeerObservation:
    """Everything one view knows about one peer."""

    __slots__ = (
        "last_heard", "beats", "gap_ewma", "version", "digest",
        "streak_mark", "sent_weight", "recv_weight", "loss_mark",
        "retry_score", "retry_mark", "ack_ewma", "reports",
    )

    def __init__(self) -> None:
        #: Sim time of the last digest-bearing heartbeat from the peer.
        self.last_heard = float("-inf")
        self.beats = 0
        #: EWMA of (inter-arrival gap / expected interval); 1.0 = nominal.
        #: Updated only on *arrivals*: a peer that stops talking freezes
        #: its ratio instead of inflating it, which is what keeps crashed
        #: and partitioned peers out of the gray-flag path.
        self.gap_ewma = 1.0
        #: Last attested send streak (``HeartbeatBody.vitals_streak``);
        #: consecutive streak deltas count heartbeats the peer *sent* us
        #: between arrivals, loss-accounting that wall-clock gaps cannot
        #: do (they conflate loss with neighbor-set churn and jitter).
        self.streak_mark = 0
        #: Decaying count of heartbeats the peer attests it sent us.
        self.sent_weight = 0.0
        #: Decaying count of heartbeats that actually arrived.
        self.recv_weight = 0.0
        self.loss_mark = 0.0
        self.version = 0
        self.digest: Optional[VitalsDigest] = None
        #: Decaying local trouble attribution (retries, dead letters).
        self.retry_score = 0.0
        self.retry_mark = 0.0
        #: EWMA of reliable-exchange ack round-trips to this peer.
        self.ack_ewma = 0.0
        #: reporter address -> (time folded, discounted score).
        self.reports: Dict[NodeAddress, Tuple[float, float]] = {}


@dataclass(frozen=True)
class HealthScorer:
    """Tunable thresholds for gray-failure flagging.

    ``seed`` only perturbs score *tie-breaking* (a deterministic
    per-peer epsilon derived by hashing), never protocol behavior; every
    node may carry a different seed and still converge on the same flags
    because the epsilon is orders of magnitude below any threshold.
    """

    seed: int = 0
    #: Heartbeat loss below this rate is ambient noise, not evidence.
    loss_grace: float = 0.08
    #: Flat slack (in lost heartbeats) on top of the rate allowance, so
    #: one unlucky drop in an otherwise clean window scores zero.
    loss_slack: float = 0.4
    #: Score per excess lost heartbeat beyond the ambient allowance.
    loss_weight: float = 2.5
    #: Attested sends needed before the loss estimator is trusted
    #: (below it the coarse gap-ratio fallback applies).
    min_evidence: float = 4.0
    #: Gap ratios below this are nominal (heartbeat jitter + ambient
    #: loss); only consulted while loss evidence is still thin.
    gap_grace: float = 1.3
    gap_weight: float = 2.0
    retry_weight: float = 0.5
    ack_weight: float = 1.0
    #: Local score needed to gossip a suspect / count self as a reporter.
    #: Sits above what an ambient double-loss window can reach (~2.2),
    #: so coincidental noise never gets corroborated.
    report_floor: float = 2.3
    #: Fresh third-party reports expire after this many expected
    #: intervals.  Generous on purpose: a victim's observers are rarely
    #: each other's neighbors, so corroboration rides reports that must
    #: outlive the gossip hop plus the second observer's own ramp-up.
    report_ttl: float = 6.0
    #: Peers unheard for this many expected intervals leave the flag pool.
    freshness: float = 3.0
    min_reporters: int = 2
    min_score: float = 3.5
    #: A flagged score must exceed ``median_ratio`` x neighborhood median.
    median_ratio: float = 3.0
    median_floor: float = 0.25
    #: Median per-stream loss rate at/above which the whole view goes
    #: quiet: when *most* streams are losing heartbeats, the common
    #: cause is this node's own link (a gray self) or a network-wide
    #: storm, and flagging individual peers would only frame them.
    storm_rate: float = 0.18
    #: Multiplier on the neighborhood ambient loss estimate when it
    #: exceeds ``loss_grace``: a stream must lose at *this many times*
    #: the ambient rate before the excess scores.  A gray victim loses
    #: at ~6x ambient; the unluckiest stream of a congested-but-healthy
    #: neighborhood sits around 2x, inside this headroom.
    ambient_headroom: float = 2.5

    def tiebreak(self, address: NodeAddress) -> float:
        """Deterministic sub-threshold epsilon for stable orderings."""
        digest = zlib.crc32(
            f"{self.seed}:{address.ip}:{address.port}".encode("utf-8")
        )
        return (digest % 997) * 1e-9


class NeighborHealthView:
    """A bounded, decaying map of peer health evidence.

    ``owner`` (when given) is excluded from the view entirely -- a node
    never tracks itself, and the ``telemetry`` audit check enforces it.
    """

    def __init__(
        self,
        expected_interval: float = 5.0,
        capacity: int = 64,
        owner: Optional[NodeAddress] = None,
        scorer: Optional[HealthScorer] = None,
        gap_alpha: float = 0.35,
        half_life: Optional[float] = None,
        loss_half_life: Optional[float] = None,
    ) -> None:
        if expected_interval <= 0.0:
            raise ValueError(
                f"expected_interval must be positive, got {expected_interval}"
            )
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.expected_interval = expected_interval
        self.capacity = capacity
        self.owner = owner
        self.scorer = scorer if scorer is not None else HealthScorer()
        self.gap_alpha = gap_alpha
        #: Decay half-life for local trouble attributions.
        self.half_life = (
            half_life if half_life is not None else 2.0 * expected_interval
        )
        #: Decay half-life for the attested sent/received counters; the
        #: effective loss window is a handful of these, long enough to
        #: average over ambient noise yet short enough to detect inside
        #: the chaos campaign's tick budget.
        self.loss_half_life = (
            loss_half_life
            if loss_half_life is not None
            else 6.0 * expected_interval
        )
        self.peers: Dict[NodeAddress, PeerObservation] = {}

    # ------------------------------------------------------------------
    # Evidence intake
    # ------------------------------------------------------------------
    def _entry(self, address: NodeAddress) -> Optional[PeerObservation]:
        """The (possibly new) entry for ``address``; None for the owner."""
        if self.owner is not None and address == self.owner:
            return None
        entry = self.peers.get(address)
        if entry is None:
            if len(self.peers) >= self.capacity:
                stalest = min(
                    self.peers,
                    key=lambda a: (
                        self.peers[a].last_heard, _address_key(a)
                    ),
                )
                del self.peers[stalest]
            entry = PeerObservation()
            self.peers[address] = entry
        return entry

    def observe(
        self,
        source: NodeAddress,
        digest: VitalsDigest,
        now: float,
        streak: Optional[int] = None,
    ) -> None:
        """Fold one digest-bearing heartbeat from ``source``.

        ``streak`` is the sender's attestation of how many consecutive
        heartbeat ticks (including this one) it addressed us.  An arrival
        gap wider than the streak covers means the sender was not
        heartbeating us at all (neighbor-set churn, recovery from a
        crash) -- that is not network loss, so the gap evidence is capped
        at what the attested sends can explain.
        """
        # Fast path: the per-heartbeat cost of the telemetry plane runs
        # through here, and after the first beat the entry always exists.
        entry = self.peers.get(source)
        if entry is None:
            entry = self._entry(source)
            if entry is None:
                return
        if entry.beats > 0:
            gap = max(0.0, now - entry.last_heard)
            ratio = min(4.0, gap / self.expected_interval)
            if streak is not None and streak >= 1:
                ratio = min(ratio, float(streak))
            entry.gap_ewma += self.gap_alpha * (ratio - entry.gap_ewma)
        if streak is not None and streak >= 1:
            if 0 < entry.streak_mark < streak:
                sends = streak - entry.streak_mark
            else:
                # Streak restarted (churn, sender recovery) or first
                # attestation: only this arrival's send is accounted.
                sends = 1
            age = now - entry.loss_mark
            decay = 0.5 ** (age / self.loss_half_life) if age > 0.0 else 1.0
            entry.sent_weight = entry.sent_weight * decay + float(sends)
            entry.recv_weight = entry.recv_weight * decay + 1.0
            entry.loss_mark = now
            entry.streak_mark = streak
        else:
            entry.streak_mark = 0
        entry.beats += 1
        entry.last_heard = now
        # Versions may arrive out of order under variable latency; keep
        # the newest digest and never let the stored version regress.
        if digest.version > entry.version:
            entry.version = digest.version
            entry.digest = digest
        # Third-party trouble reports, discounted by the reporter's
        # blame fan-out (a reporter blaming many peers at once is weak
        # evidence against each of them -- and is how a gray node's own
        # scattergun attributions are kept from framing its neighbors).
        if digest.suspects:
            discount = 1.0 / len(digest.suspects)
            for subject, score in digest.suspects:
                if subject == source:
                    continue  # self-blame carries no information
                if self.owner is not None and subject == self.owner:
                    continue  # reports about me are not mine to act on
                subject_entry = self.peers.get(subject)
                if subject_entry is None:
                    continue  # only corroborate peers we hear directly
                subject_entry.reports[source] = (now, score * discount)
                while len(subject_entry.reports) > REPORT_CAPACITY:
                    oldest = min(
                        subject_entry.reports,
                        key=lambda a: (
                            subject_entry.reports[a][0], _address_key(a)
                        ),
                    )
                    del subject_entry.reports[oldest]

    def _bump(self, destination: NodeAddress, now: float, weight: float) -> None:
        entry = self._entry(destination)
        if entry is None:
            return
        entry.retry_score = (
            self._decayed(entry.retry_score, now - entry.retry_mark) + weight
        )
        entry.retry_mark = now

    def note_retry(self, destination: NodeAddress, now: float) -> None:
        """A reliable exchange toward ``destination`` needed a retransmit."""
        self._bump(destination, now, 1.0)

    def note_dead_letter(self, destination: NodeAddress, now: float) -> None:
        """A reliable exchange toward ``destination`` was abandoned."""
        self._bump(destination, now, 3.0)

    def note_ack(
        self, destination: NodeAddress, rtt: float, now: float
    ) -> None:
        """A reliable exchange to ``destination`` acked after ``rtt``."""
        entry = self._entry(destination)
        if entry is None:
            return
        if entry.ack_ewma == 0.0:
            entry.ack_ewma = rtt
        else:
            entry.ack_ewma += self.gap_alpha * (rtt - entry.ack_ewma)

    def _decayed(self, score: float, age: float) -> float:
        if score <= 0.0 or age <= 0.0:
            return max(0.0, score)
        return score * 0.5 ** (age / self.half_life)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def loss_rate(self, address: NodeAddress) -> Optional[float]:
        """The attested heartbeat loss rate of ``address``'s stream.

        ``None`` until the stream has accumulated enough attested sends
        for the estimate to mean anything.
        """
        entry = self.peers.get(address)
        if entry is None or entry.sent_weight < self.scorer.min_evidence:
            return None
        lost = max(0.0, entry.sent_weight - entry.recv_weight)
        return lost / entry.sent_weight

    def _ambient_loss(self, now: float) -> float:
        """Median per-stream attested loss rate across fresh streams.

        Consumed by the storm silencer: when *most* streams are losing
        heartbeats the common cause is this node's own link or a
        network-wide storm.  The median over three or more evidenced
        streams is robust to one genuinely gray peer; with fewer it
        returns 0.0 (two lossy streams cannot attest a storm).
        """
        horizon = self.scorer.freshness * self.expected_interval
        rates = []
        for entry in self.peers.values():
            if entry.beats == 0 or now - entry.last_heard > horizon:
                continue
            if entry.sent_weight < self.scorer.min_evidence:
                continue
            lost = max(0.0, entry.sent_weight - entry.recv_weight)
            rates.append(lost / entry.sent_weight)
        if len(rates) < 3:
            return 0.0
        rates.sort()
        return rates[len(rates) // 2]

    def _ambient_excluding(self, subject: NodeAddress, now: float) -> float:
        """Pooled loss rate of every fresh stream *except* ``subject``'s.

        The baseline a single stream's loss is judged against.  Pooling
        (total lost over total sent) beats a median of per-stream rates
        here: each stream's own rate rides a window of only a handful of
        decayed heartbeats, noisy enough at elevated ambient loss that
        the unluckiest of a few streams routinely doubles the true rate
        -- exactly the false positive this baseline must absorb.  The
        pool spans every other stream's window, so its variance shrinks
        with neighborhood size, and excluding the subject keeps a gray
        victim from raising its own bar.  Returns 0.0 (no adjustment)
        until the pool itself carries minimal evidence.
        """
        horizon = self.scorer.freshness * self.expected_interval
        lost_total = 0.0
        sent_total = 0.0
        for address, entry in self.peers.items():
            if address == subject:
                continue
            if entry.beats == 0 or now - entry.last_heard > horizon:
                continue
            if entry.sent_weight < self.scorer.min_evidence:
                continue
            sent_total += entry.sent_weight
            lost_total += max(0.0, entry.sent_weight - entry.recv_weight)
        if sent_total < self.scorer.min_evidence:
            return 0.0
        return lost_total / sent_total

    def local_score(self, address: NodeAddress, now: float) -> float:
        """This node's own trouble attribution for ``address``."""
        entry = self.peers.get(address)
        if entry is None:
            return 0.0
        scorer = self.scorer
        if entry.sent_weight >= scorer.min_evidence:
            # Attested loss accounting: score the *excess* lost
            # heartbeats beyond what ambient loss explains.  The
            # allowance adapts to the rest of the neighborhood's pooled
            # baseline with multiplicative headroom, so loss a congested
            # network inflicts on *everyone* never singles out whoever
            # drew the worst dice -- while a gray victim, losing at many
            # times what its peers' streams lose, still clears it
            # immediately.
            ambient = self._ambient_excluding(address, now)
            grace = max(
                scorer.loss_grace, scorer.ambient_headroom * ambient
            )
            lost = max(0.0, entry.sent_weight - entry.recv_weight)
            allowance = grace * entry.sent_weight + scorer.loss_slack
            link = max(0.0, lost - allowance) * scorer.loss_weight
        else:
            link = (
                max(0.0, entry.gap_ewma - scorer.gap_grace)
                * scorer.gap_weight
            )
        retry = (
            self._decayed(entry.retry_score, now - entry.retry_mark)
            * scorer.retry_weight
        )
        return link + retry

    def _self_suspect(self, now: float) -> bool:
        """Whether the evidence pattern indicts *this* node, not a peer.

        One gray peer degrades one inbound stream; a gray *self* (its
        own NIC eating inbound traffic) or a network-wide storm degrades
        nearly all of them.  The median per-stream loss rate separates
        the two: it ignores a single bad peer but crosses the threshold
        when the trouble is everywhere -- and then both gossip and
        flagging go quiet rather than framing healthy peers.
        """
        return self._ambient_loss(now) >= self.scorer.storm_rate

    def suspects(
        self, now: float, limit: int = MAX_SUSPECTS
    ) -> Tuple[Tuple[NodeAddress, float], ...]:
        """The local attributions worth gossiping in the next digest."""
        scorer = self.scorer
        floor = scorer.report_floor
        # Fast path for the common case: a healthy neighborhood gossips
        # nothing, so most rolls can skip the storm check and the full
        # per-peer scoring pass.  ``bound`` is a cheap upper bound on
        # each entry's local score (retry evidence taken undecayed, loss
        # and gap terms exact); only when some entry could clear the
        # report floor does the slow path run.
        could_report = False
        for entry in self.peers.values():
            bound = entry.retry_score * scorer.retry_weight
            if entry.sent_weight >= scorer.min_evidence:
                lost = entry.sent_weight - entry.recv_weight
                excess = lost - (
                    scorer.loss_grace * entry.sent_weight + scorer.loss_slack
                )
                if excess > 0.0:
                    bound += excess * scorer.loss_weight
            elif entry.gap_ewma > scorer.gap_grace:
                bound += (entry.gap_ewma - scorer.gap_grace) * scorer.gap_weight
            if bound >= floor:
                could_report = True
                break
        if not could_report:
            return ()
        if self._self_suspect(now):
            return ()
        scored = []
        for address in sorted(self.peers, key=_address_key):
            score = self.local_score(address, now)
            if score >= floor:
                scored.append((address, round(score, 3)))
        scored.sort(key=lambda item: (-item[1], _address_key(item[0])))
        return tuple(scored[:limit])

    def flags(self, now: float) -> List[NodeAddress]:
        """Peers this view currently calls gray, deterministically ordered."""
        if self._self_suspect(now):
            return []
        scorer = self.scorer
        fresh_horizon = scorer.freshness * self.expected_interval
        report_horizon = scorer.report_ttl * self.expected_interval
        candidates: List[Tuple[NodeAddress, float, int]] = []
        rtts = sorted(
            entry.ack_ewma
            for entry in self.peers.values()
            if entry.ack_ewma > 0.0
        )
        median_rtt = rtts[len(rtts) // 2] if len(rtts) >= 3 else 0.0
        for address in sorted(self.peers, key=_address_key):
            entry = self.peers[address]
            if entry.beats == 0 or now - entry.last_heard > fresh_horizon:
                continue
            local = self.local_score(address, now)
            combined = local + scorer.tiebreak(address)
            if median_rtt > 0.0 and entry.ack_ewma > 2.0 * median_rtt:
                combined += (
                    (entry.ack_ewma / median_rtt - 2.0) * scorer.ack_weight
                )
            reporters = 1 if local >= scorer.report_floor else 0
            for reporter in sorted(entry.reports, key=_address_key):
                reported_at, score = entry.reports[reporter]
                age = now - reported_at
                if age > report_horizon:
                    continue
                combined += self._decayed(score, age)
                reporters += 1
            candidates.append((address, combined, reporters))
        if not candidates:
            return []
        scores = sorted(score for _, score, _ in candidates)
        median = scores[len(scores) // 2] if len(scores) >= 3 else 0.0
        bar = max(
            scorer.min_score,
            scorer.median_ratio * max(median, scorer.median_floor),
        )
        return [
            address
            for address, score, reporters in candidates
            if reporters >= scorer.min_reporters and score >= bar
        ]

    def __len__(self) -> int:
        return len(self.peers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NeighborHealthView(peers={len(self.peers)}, "
            f"capacity={self.capacity})"
        )
