"""The in-band telemetry plane: per-node vitals and heartbeat digests.

Everything the repo could observe before this module was observer-side
and omniscient -- the global :class:`~repro.obs.registry.MetricsRegistry`,
the flight recorder, and the invariant auditor all attach from *outside*
the cluster.  No node could see that a neighbor was slow, overloaded, or
gray-failing, yet GeoGrid's adaptation story presumes nodes act on load
signals carried by the overlay itself.

This module supplies the node-local half of that plane:

* :class:`VitalsFrame` -- a compact always-on accumulator each protocol
  node updates from cheap hooks (message dispatch, the reliable channel,
  the shortcut cache).  It tracks per-message-class send/recv counts,
  handler wall-time from the dispatch profiling hooks, reliable-layer
  retries and dead letters, and rolls a bounded **windowed** summary on
  demand.  Wall-clock values are *display-only*: nothing protocol-visible
  ever branches on them, so determinism of the simulation is preserved.
* :class:`VitalsDigest` -- the versioned, bounded-byte snapshot a node
  piggybacks on its existing neighbor heartbeats (no new round-trips).
  Receivers fold digests into a :class:`~repro.obs.health.NeighborHealthView`.

The module also hosts the observer-side conveniences built on top:
``cluster_sample`` (one dashboard/export sample of a live cluster),
the demo-cluster driver shared by ``python -m repro top`` / ``export``,
and the telemetry micro-benches behind ``python -m repro bench telemetry``.
"""

from __future__ import annotations

import random
import time
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.node import NodeAddress

__all__ = [
    "DIGEST_BYTE_BUDGET",
    "EVENT_SAMPLE",
    "MAX_SUSPECTS",
    "VitalsDigest",
    "VitalsFrame",
    "cluster_sample",
    "demo_cluster",
    "drive_traffic",
    "measure_digest_overhead",
    "measure_telemetry_overhead",
]

#: Hard ceiling on the wire size of one digest (checked by the bench and
#: the ``telemetry`` audit).  Heartbeats are the protocol's most frequent
#: message; the piggyback must stay a small constant tax.
DIGEST_BYTE_BUDGET = 512

#: At most this many trouble attributions ride in one digest.
MAX_SUSPECTS = 3

#: Per-message accounting runs on every Nth event rather than every one.
#: The countdown itself still ticks on *every* event, so exact totals are
#: recoverable as ``accounted + (EVENT_SAMPLE - countdown)`` -- the
#: sampling loses no precision on the counts the digest rates are built
#: from.  What IS sampled: the per-kind breakdown (each sampled event
#: books ``EVENT_SAMPLE`` to its kind, an unbiased estimate) and handler
#: wall-time (two ``perf_counter`` calls per dispatch were the single
#: largest telemetry tax on the hot path; handler_ms is a display-only
#: mean for which a deterministic 1-in-N sample is plenty).
EVENT_SAMPLE = 8


def _address_key(address: NodeAddress) -> Tuple[str, int]:
    """Deterministic sort key for address-keyed fan-outs."""
    return (address.ip, address.port)


@dataclass(frozen=True)
class VitalsDigest:
    """One versioned snapshot of a node's vitals, sized for a heartbeat.

    ``version`` increments on every roll and never regresses for a live
    node -- the ``telemetry`` audit check and receive-side folding both
    rely on that monotonicity.  Rates cover the ``window`` sim-time units
    ending at the roll; gauges (``store_size``, ``queue_depth``, ...) are
    point-in-time.  ``suspects`` carries up to :data:`MAX_SUSPECTS`
    ``(address, score)`` trouble attributions from the sender's own
    neighborhood health view, which is how single-observer evidence
    against a gray node becomes corroborated neighborhood evidence.
    """

    version: int
    window: float
    sent_rate: float
    recv_rate: float
    drop_rate: float
    retry_rate: float
    dead_letters: int
    store_size: int
    anti_entropy_debt: int
    shortcut_hit_rate: float
    handler_ms: float
    queue_depth: int
    suspects: Tuple[Tuple[NodeAddress, float], ...] = ()
    #: Subscription-plane vitals: registered continuous queries at roll
    #: time, match rate over the window, and cumulative NOTIFY
    #: retransmits.  All three default to zero so digests from nodes
    #: without subscriptions (or with the plane disabled) are
    #: byte-identical to pre-plane digests (see :meth:`to_wire`).
    sub_registered: int = 0
    sub_match_rate: float = 0.0
    sub_notify_retries: int = 0
    #: Overload-plane vitals: ingress backpressure in [0, 1] at roll
    #: time and cumulative messages shed by admission control.  Both
    #: default to zero so digests from nodes with the plane disabled
    #: are byte-identical to pre-plane digests (see :meth:`to_wire`).
    pressure: float = 0.0
    sheds: int = 0

    def to_wire(self) -> str:
        """The compact textual encoding whose size the byte budget bounds.

        The simulation never serializes messages for real, so this stands
        in for the wire form: a fixed field order, fixed float precision,
        ``ip:port`` addresses.  Byte accounting (bench + audit) uses it.
        The subscription suffix is elided while all three sub fields are
        zero, keeping idle digests at their historical size.
        """
        suspects = ";".join(
            f"{addr.ip}:{addr.port}={score:.2f}"
            for addr, score in self.suspects
        )
        wire = (
            f"v={self.version}|w={self.window:.2f}"
            f"|tx={self.sent_rate:.3f}|rx={self.recv_rate:.3f}"
            f"|dr={self.drop_rate:.3f}|rt={self.retry_rate:.3f}"
            f"|dl={self.dead_letters}|st={self.store_size}"
            f"|ae={self.anti_entropy_debt}|sh={self.shortcut_hit_rate:.3f}"
            f"|hm={self.handler_ms:.3f}|q={self.queue_depth}"
            f"|s={suspects}"
        )
        if (
            self.sub_registered
            or self.sub_match_rate
            or self.sub_notify_retries
        ):
            wire += (
                f"|sb={self.sub_registered}"
                f"|sm={self.sub_match_rate:.3f}"
                f"|sn={self.sub_notify_retries}"
            )
        # Like the subscription suffix: elided while the overload plane
        # has nothing to report, keeping idle digests at their
        # historical size.
        if self.pressure or self.sheds:
            wire += f"|op={self.pressure:.3f}|os={self.sheds}"
        return wire

    def encoded_size(self) -> int:
        """Encoded size in bytes (UTF-8 of :meth:`to_wire`)."""
        return len(self.to_wire().encode("utf-8"))


class VitalsFrame:
    """Node-local vitals accumulator fed by lightweight hooks.

    Cumulative per-kind counters live for the node's whole life (the
    dashboard drills into them); a second set of window counters resets
    on every :meth:`roll`, which produces the rate fields of the digest.
    The frame deliberately holds no reference to the node and consumes no
    randomness -- it is pure bookkeeping.
    """

    def __init__(self) -> None:
        self.version = 0
        #: Sampled per-message-class estimates (bounded by the protocol's
        #: fixed kind vocabulary, ~30 entries): every ``EVENT_SAMPLE``-th
        #: event books ``EVENT_SAMPLE`` to its kind, so values converge on
        #: the true counts but individual entries are estimates, not exact
        #: tallies.  Exact totals come from :meth:`sent_total` /
        #: :meth:`recv_total`.  defaultdicts so the sampled updates pay a
        #: single hash probe instead of get+set.
        self.sent_by_kind: Dict[str, int] = defaultdict(int)
        self.recv_by_kind: Dict[str, int] = defaultdict(int)
        #: Sampled handler wall-time (seconds) and call counts by kind.
        self.handler_seconds: Dict[str, float] = defaultdict(float)
        self.handler_calls: Dict[str, int] = defaultdict(int)
        self.retries = 0
        self.dead_letters = 0
        self.shortcut_hits = 0
        self.shortcut_misses = 0
        #: Subscription-plane counters: matched events pushed from this
        #: node, NOTIFY retransmits, and NOTIFY exchanges abandoned.
        self.sub_matches = 0
        self.notify_retries = 0
        self.notify_dead_letters = 0
        #: The digest produced by the most recent roll (observer access).
        self.last_digest: Optional[VitalsDigest] = None
        #: Event countdowns (see ``EVENT_SAMPLE``): decremented on every
        #: event, so ``accounted + (EVENT_SAMPLE - countdown)`` is the
        #: exact event count even though per-event work is one subtract
        #: and a branch.  ``profile_countdown`` (receives) is owned by
        #: the node dispatch loop, which inlines :meth:`on_recv`.
        self.profile_countdown = EVENT_SAMPLE
        self.send_countdown = EVENT_SAMPLE
        #: Exact counts booked at sampled events (multiples of
        #: ``EVENT_SAMPLE``); the countdowns carry the remainders.
        self._sent_accounted = 0
        self._recv_accounted = 0
        # Cumulative marks at the last roll(), for window deltas.
        self._rolled_sent = 0
        self._rolled_recv = 0
        # Window accumulators, reset by roll().
        self._win_start: Optional[float] = None
        self._win_retries = 0
        self._win_drops = 0
        self._win_handler_seconds = 0.0
        self._win_handler_calls = 0
        self._win_shortcut_hits = 0
        self._win_shortcut_misses = 0
        self._win_sub_matches = 0

    # ------------------------------------------------------------------
    # Hooks (called from the hot paths; keep them tiny)
    # ------------------------------------------------------------------
    def on_send(self, kind: str) -> None:
        # Fires on every transport send; see EVENT_SAMPLE for why the
        # common path is a bare countdown tick.
        n = self.send_countdown - 1
        if n:
            self.send_countdown = n
        else:
            self.send_countdown = EVENT_SAMPLE
            self._sent_accounted += EVENT_SAMPLE
            self.sent_by_kind[kind] += EVENT_SAMPLE

    def on_recv(self, kind: str) -> None:
        n = self.profile_countdown - 1
        if n:
            self.profile_countdown = n
        else:
            self.profile_countdown = EVENT_SAMPLE
            self._recv_accounted += EVENT_SAMPLE
            self.recv_by_kind[kind] += EVENT_SAMPLE

    def sent_total(self) -> int:
        """Exact lifetime send count (countdown carries the remainder)."""
        return self._sent_accounted + (EVENT_SAMPLE - self.send_countdown)

    def recv_total(self) -> int:
        """Exact lifetime receive count."""
        return self._recv_accounted + (EVENT_SAMPLE - self.profile_countdown)

    def on_handler(self, kind: str, wall_seconds: float) -> None:
        self.handler_seconds[kind] += wall_seconds
        self.handler_calls[kind] += 1
        self._win_handler_seconds += wall_seconds
        self._win_handler_calls += 1

    def on_retry(self) -> None:
        self.retries += 1
        self._win_retries += 1
        # A retry is the sender-side image of a drop: best-effort loss is
        # invisible at the sender, so retransmissions of critical
        # exchanges are the node's only drop signal about its own links.
        self._win_drops += 1

    def on_dead_letter(self) -> None:
        self.dead_letters += 1

    def on_shortcut(self, hit: bool) -> None:
        if hit:
            self.shortcut_hits += 1
            self._win_shortcut_hits += 1
        else:
            self.shortcut_misses += 1
            self._win_shortcut_misses += 1

    def on_sub_match(self) -> None:
        self.sub_matches += 1
        self._win_sub_matches += 1

    def on_notify_retry(self) -> None:
        # Counted on top of on_retry(): the generic retry fires for every
        # reliable kind, this one attributes NOTIFY push pressure.
        self.notify_retries += 1

    def on_notify_dead_letter(self) -> None:
        self.notify_dead_letters += 1

    # ------------------------------------------------------------------
    # Rolling
    # ------------------------------------------------------------------
    def roll(
        self,
        now: float,
        store_size: int = 0,
        anti_entropy_debt: int = 0,
        queue_depth: int = 0,
        suspects: Tuple[Tuple[NodeAddress, float], ...] = (),
        sub_registered: int = 0,
        pressure: float = 0.0,
        sheds: int = 0,
    ) -> VitalsDigest:
        """Close the current window and emit the next digest version."""
        if self._win_start is None:
            window = 0.0
        else:
            window = max(0.0, now - self._win_start)
        denom = window if window > 0.0 else 1.0
        sent_total = self.sent_total()
        recv_total = self.recv_total()
        win_sent = sent_total - self._rolled_sent
        win_recv = recv_total - self._rolled_recv
        lookups = self._win_shortcut_hits + self._win_shortcut_misses
        handler_ms = (
            self._win_handler_seconds / self._win_handler_calls * 1000.0
            if self._win_handler_calls
            else 0.0
        )
        self.version += 1
        # Constructed by writing the field dict directly: the frozen
        # __init__ pays one object.__setattr__ per field, and this runs
        # once per node per heartbeat tick on the telemetry hot path.
        # Semantically identical to calling VitalsDigest(...).
        digest = object.__new__(VitalsDigest)
        digest.__dict__.update(
            version=self.version,
            window=window,
            sent_rate=win_sent / denom,
            recv_rate=win_recv / denom,
            drop_rate=self._win_drops / denom,
            retry_rate=self._win_retries / denom,
            dead_letters=self.dead_letters,
            store_size=store_size,
            anti_entropy_debt=anti_entropy_debt,
            shortcut_hit_rate=(
                self._win_shortcut_hits / lookups if lookups else 0.0
            ),
            handler_ms=handler_ms,
            queue_depth=queue_depth,
            suspects=tuple(suspects[:MAX_SUSPECTS]),
            # object.__new__ bypasses the dataclass defaults, so every
            # field must be written explicitly here -- including the
            # subscription trio.
            sub_registered=sub_registered,
            sub_match_rate=self._win_sub_matches / denom,
            sub_notify_retries=self.notify_retries,
            pressure=pressure,
            sheds=sheds,
        )
        self.last_digest = digest
        self._win_start = now
        self._rolled_sent = sent_total
        self._rolled_recv = recv_total
        self._win_retries = 0
        self._win_drops = 0
        self._win_handler_seconds = 0.0
        self._win_handler_calls = 0
        self._win_shortcut_hits = 0
        self._win_shortcut_misses = 0
        self._win_sub_matches = 0
        return digest

    def totals(self) -> Dict[str, int]:
        """Cumulative lifetime counters (dashboard drill-down)."""
        return {
            "sent": self.sent_total(),
            "recv": self.recv_total(),
            "retries": self.retries,
            "dead_letters": self.dead_letters,
            "shortcut_hits": self.shortcut_hits,
            "shortcut_misses": self.shortcut_misses,
            "sub_matches": self.sub_matches,
            "notify_retries": self.notify_retries,
            "notify_dead_letters": self.notify_dead_letters,
        }


# ----------------------------------------------------------------------
# Observer-side sampling (dashboard / export)
# ----------------------------------------------------------------------
def cluster_sample(cluster: Any) -> Dict[str, Any]:
    """One observer-side sample of a live cluster's telemetry plane.

    Returns a plain dict (JSON-safe except for nothing -- addresses are
    rendered as strings) consumed by the dashboard renderer, the JSONL
    exporter, and the CI smoke assertions.  Deterministic given the
    cluster state, except for the wall-clock ``handler_ms`` fields.
    """
    now = cluster.scheduler.now
    nodes: List[Dict[str, Any]] = []
    live = [n for n in cluster.nodes.values() if n.alive]
    live.sort(key=lambda n: _address_key(n.address))
    slo_values: Dict[str, List[float]] = {}
    for pnode in live:
        digest = pnode.vitals.last_digest
        flags = pnode.health_flags()
        row: Dict[str, Any] = {
            "address": str(pnode.address),
            "node_id": pnode.node.node_id,
            "version": pnode.vitals.version,
            "sent_rate": digest.sent_rate if digest else 0.0,
            "recv_rate": digest.recv_rate if digest else 0.0,
            "retry_rate": digest.retry_rate if digest else 0.0,
            "dead_letters": pnode.vitals.dead_letters,
            "store_size": digest.store_size if digest else 0,
            "anti_entropy_debt": digest.anti_entropy_debt if digest else 0,
            "shortcut_hit_rate": digest.shortcut_hit_rate if digest else 0.0,
            "handler_ms": digest.handler_ms if digest else 0.0,
            "queue_depth": digest.queue_depth if digest else 0,
            "digest_bytes": digest.encoded_size() if digest else 0,
            "peers_tracked": len(pnode.health.peers),
            "flags": [str(a) for a in flags],
            "sub_registered": digest.sub_registered if digest else 0,
            "sub_matched": pnode.vitals.sub_matches,
            "sub_notified": len(pnode.notifications),
            "sub_dead_letters": pnode.vitals.notify_dead_letters,
            "pressure": digest.pressure if digest else 0.0,
            "sheds": pnode.sheds,
            "shed_received": sum(pnode.shed_received.values()),
            "deflections": pnode.deflections,
        }
        nodes.append(row)
        for name, histogram in pnode.slo_histograms().items():
            slo_values.setdefault(name, []).extend(histogram.samples())
    slo: Dict[str, Dict[str, float]] = {}
    for name in sorted(slo_values):
        values = sorted(slo_values[name])
        if not values:
            continue
        slo[name] = {
            "count": len(values),
            "p50": _quantile(values, 0.50),
            "p95": _quantile(values, 0.95),
            "p99": _quantile(values, 0.99),
            "max": values[-1],
        }
    flagged = sorted(
        {flag for row in nodes for flag in row["flags"]}
    )
    return {
        "time": now,
        "nodes": nodes,
        "rates": {
            "sent": sum(r["sent_rate"] for r in nodes),
            "recv": sum(r["recv_rate"] for r in nodes),
            "retries": sum(r["retry_rate"] for r in nodes),
            "dead_letters": sum(r["dead_letters"] for r in nodes),
        },
        "slo": slo,
        "flagged": flagged,
    }


def _quantile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank quantile over an already-sorted list."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


# ----------------------------------------------------------------------
# The demo cluster shared by `repro top` / `repro export`
# ----------------------------------------------------------------------
def demo_cluster(
    seed: int = 7,
    population: int = 10,
    drop_probability: float = 0.02,
    bounds: Optional[Any] = None,
    config: Optional[Any] = None,
) -> Tuple[Any, random.Random]:
    """Build and settle a small instrumented cluster plus a traffic rng."""
    from repro.geometry import Point, Rect
    from repro.protocol.cluster import ProtocolCluster

    if bounds is None:
        bounds = Rect(0.0, 0.0, 64.0, 64.0)
    cluster = ProtocolCluster(
        bounds,
        seed=seed,
        drop_probability=drop_probability,
        config=config,
    )
    rng = random.Random(seed * 104729 + 1)
    for _ in range(population):
        coord = Point(
            rng.uniform(bounds.x, bounds.x + bounds.width),
            rng.uniform(bounds.y, bounds.y + bounds.height),
        )
        cluster.join_node(coord, capacity=rng.choice([1.0, 10.0, 100.0]))
    cluster.run_for(40.0)
    return cluster, rng


def drive_traffic(
    cluster: Any,
    rng: random.Random,
    duration: float,
    operations: int = 6,
) -> None:
    """Issue a mixed fire-and-forget workload, then advance ``duration``.

    Mirrors the chaos arena's traffic slices: store updates, lookups, and
    routed sends originate at random live nodes so SLO histograms fill at
    the edge where the operations start.
    """
    from repro.geometry import Point, Rect

    bounds = cluster.bounds
    live = [n for n in cluster.nodes.values() if n.alive and n.joined]
    live.sort(key=lambda n: _address_key(n.address))
    if live:
        for index in range(operations):
            origin = rng.choice(live)
            x = rng.uniform(bounds.x, bounds.x + bounds.width)
            y = rng.uniform(bounds.y, bounds.y + bounds.height)
            choice = index % 3
            if choice == 0:
                origin.store_update(
                    object_id=f"demo-{rng.randrange(1 << 30)}",
                    point=Point(x, y),
                )
            elif choice == 1:
                origin.store_lookup(
                    Rect(
                        max(bounds.x, x - 4.0),
                        max(bounds.y, y - 4.0),
                        8.0,
                        8.0,
                    )
                )
            else:
                origin.send_to_point(Point(x, y), "demo")
    cluster.run_for(duration)


# ----------------------------------------------------------------------
# Benches (consumed by `python -m repro bench telemetry`)
# ----------------------------------------------------------------------
def measure_digest_overhead(
    seed: int = 7,
    population: int = 8,
    slices: int = 6,
) -> Dict[str, Any]:
    """Sample digest wire sizes across a live cluster's heartbeat rolls."""
    cluster, rng = demo_cluster(seed=seed, population=population)
    sizes: List[int] = []
    for _ in range(slices):
        drive_traffic(cluster, rng, duration=10.0, operations=4)
        for pnode in sorted(
            (n for n in cluster.nodes.values() if n.alive),
            key=lambda n: _address_key(n.address),
        ):
            digest = pnode.vitals.last_digest
            if digest is not None:
                sizes.append(digest.encoded_size())
    mean = sum(sizes) / len(sizes) if sizes else 0.0
    peak = max(sizes) if sizes else 0
    return {
        "samples": len(sizes),
        "bytes_mean": round(mean, 1),
        "bytes_max": peak,
        "byte_budget": DIGEST_BYTE_BUDGET,
        "within_budget": peak <= DIGEST_BYTE_BUDGET,
    }


def measure_telemetry_overhead(
    population: int = 10,
    sim_seconds: float = 20.0,
    ops_per_step: int = 8,
    step: float = 0.5,
    seed: int = 7,
    repeats: int = 33,
) -> Dict[str, Dict[str, float]]:
    """Wall-clock cost of the telemetry plane on routing + store benches.

    Same shape as ``chaos.measure_reliable_overhead``: identical seeded
    workloads with ``NodeConfig.telemetry_enabled`` on vs off.  The
    timed window sustains client load throughout (``ops_per_step``
    operations injected every ``step`` sim-seconds): an idle cluster's
    only activity is heartbeat ticks, so a burst-then-idle window would
    measure the fixed per-tick telemetry tax against no useful work and
    overstate the ratio a deployed cluster would see.  The timed
    sections are tens of milliseconds, where machine-speed drift across
    the measurement dwarfs the effect being measured, so each round runs
    the two modes *interleaved*: both clusters advance through the same
    schedule one ``step`` slice at a time, each slice timed separately
    and accumulated per mode.  Adjacent slices run microseconds apart,
    so a slow machine phase taxes both modes almost identically -- far
    tighter pairing than timing two whole runs back to back.  The slice
    order within each step alternates (warm-cache and heat-up effects
    cancel), GC is paused throughout, and the reported ratio is the
    **median of the per-round ratios** -- rounds are kept short so the
    median spans many of them, riding out multi-second machine-load
    phases that inflate every slice they touch.  ``enabled_s``/``disabled_s`` are
    the minimum accumulated times, reported for scale only; ``ratio``
    is the paired median, not their quotient.  The PR contract is
    ratio < 1.10 for both workloads.
    """
    import gc
    import math
    import statistics

    from repro.geometry import Point, Rect
    from repro.protocol.cluster import ProtocolCluster
    from repro.protocol.node import NodeConfig

    bounds = Rect(0.0, 0.0, 64.0, 64.0)

    def build(enabled: bool) -> Tuple[Any, Any, list]:
        """One settled cluster plus its op-injection rng and live list.

        Both modes use identical seeds; the telemetry plane consumes no
        randomness, so the two clusters evolve through identical
        membership and traffic and differ only in telemetry work.
        """
        cluster = ProtocolCluster(
            bounds,
            seed=seed,
            drop_probability=0.01,
            config=NodeConfig(telemetry_enabled=enabled),
        )
        rng = random.Random(seed * 7919 + 13)
        for _ in range(population):
            cluster.join_node(
                Point(
                    rng.uniform(0.0, bounds.width),
                    rng.uniform(0.0, bounds.height),
                )
            )
        cluster.run_for(30.0)
        live = [n for n in cluster.nodes.values() if n.alive]
        live.sort(key=lambda n: _address_key(n.address))
        return cluster, rng, live

    def paired_round(
        sides: Dict[bool, Tuple[Any, Any, list]],
        store: bool,
        round_number: int,
    ) -> Tuple[float, float]:
        """Accumulated (disabled, enabled) wall time over interleaved slices.

        Rounds reuse the same cluster pair (settling is by far the most
        expensive part of a round, and both sides age identically), so
        object ids are derived from the round to stay unique.
        """
        totals = {False: 0.0, True: 0.0}
        steps_per_round = int(sim_seconds / step)
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for step_number in range(steps_per_round):
                order = (
                    (False, True) if step_number % 2 == 0 else (True, False)
                )
                for enabled in order:
                    cluster, rng, live = sides[enabled]
                    started = time.perf_counter()
                    for offset in range(ops_per_step):
                        # Object ids derive from the round and step so
                        # both sides issue identical operations (each
                        # side's own rng stays in lockstep by
                        # construction).
                        index = (
                            round_number * steps_per_round + step_number
                        ) * ops_per_step + offset
                        origin = rng.choice(live)
                        target = Point(
                            rng.uniform(0.0, bounds.width),
                            rng.uniform(0.0, bounds.height),
                        )
                        if store:
                            origin.store_update(
                                object_id=f"ovh-{index}", point=target
                            )
                        else:
                            origin.send_to_point(target, "ovh")
                    cluster.run_for(step)
                    totals[enabled] += time.perf_counter() - started
            return totals[False], totals[True]
        finally:
            if gc_was_enabled:
                gc.enable()

    results: Dict[str, Dict[str, float]] = {}
    for name, store in (("routing", False), ("store", True)):
        sides = {enabled: build(enabled) for enabled in (False, True)}
        paired_round(sides, store, 0)  # warm allocators and code paths
        enabled_s = math.inf
        disabled_s = math.inf
        ratios = []
        for round_number in range(1, repeats + 1):
            d, e = paired_round(sides, store, round_number)
            disabled_s = min(disabled_s, d)
            enabled_s = min(enabled_s, e)
            ratios.append(e / d if d else 0.0)
        results[name] = {
            "enabled_s": round(enabled_s, 4),
            "disabled_s": round(disabled_s, 4),
            "ratio": round(statistics.median(ratios), 3),
        }
    return results
