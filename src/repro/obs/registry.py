"""The metrics registry: counters, gauges, bounded histograms, traces.

Design constraints, in order:

1. **Cheap when on.**  Recording is a dict lookup plus an attribute
   update; histograms keep a bounded reservoir (algorithm R with a
   deterministic internal RNG) so memory stays flat no matter how many
   observations arrive.
2. **Deterministic.**  The reservoir RNG is seeded per histogram, so two
   identical runs produce identical snapshots -- experiments here are
   reproducible and the metrics must be too.
3. **Machine-readable.**  ``snapshot()`` maps every metric name to
   ``{count, mean, p50, p95, p99}`` (plus min/max/total), the schema the
   ``BENCH_*.json`` trajectory files use.
"""

from __future__ import annotations

import json
import math
import random
import zlib
from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "TraceEvent"]

#: Default bound on the per-histogram sample reservoir.
DEFAULT_RESERVOIR = 4096

#: Default bound on the trace-event ring buffer.
DEFAULT_TRACE_CAPACITY = 10_000


class Counter:
    """A monotonically increasing count (messages sent, splits, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}={self.value:g})"


class Gauge:
    """A point-in-time level (pending events, live endpoints, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with the latest level."""
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name}={self.value:g})"


class Histogram:
    """A bounded-memory distribution with exact count/mean and
    reservoir-sampled percentiles.

    ``count``, ``total``, ``minimum`` and ``maximum`` are exact over every
    observation; percentiles are computed over a reservoir of at most
    ``reservoir`` values maintained with Vitter's algorithm R, so they are
    exact until the reservoir fills and statistically representative
    afterwards.
    """

    __slots__ = (
        "name", "count", "total", "minimum", "maximum", "_sample", "_limit",
        "_rng",
    )

    def __init__(self, name: str, reservoir: int = DEFAULT_RESERVOIR) -> None:
        if reservoir < 1:
            raise ValueError(f"reservoir must be >= 1, got {reservoir}")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._sample: List[float] = []
        self._limit = reservoir
        # Seeded per histogram from a process-independent hash (str hash
        # is randomized per process): snapshots are deterministic across runs.
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        count = self.count + 1
        self.count = count
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        sample = self._sample
        if len(sample) < self._limit:
            sample.append(value)
        else:
            # Algorithm R, drawn with one C-level random() call: slot is
            # uniform over [0, count), kept when it lands in the reservoir.
            slot = int(self._rng.random() * count)
            if slot < self._limit:
                sample[slot] = value

    @property
    def mean(self) -> float:
        """Exact mean over all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def samples(self) -> Tuple[float, ...]:
        """The current reservoir contents (for merging across histograms).

        A pooled percentile over several nodes' reservoirs (e.g. the
        cluster-wide SLO tiles of ``repro top``) needs the raw samples;
        summaries cannot be merged.
        """
        return tuple(self._sample)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile ``q`` in [0, 100] over the reservoir."""
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"percentile must lie in [0, 100], got {q!r}")
        if not self._sample:
            return 0.0
        data = sorted(self._sample)
        rank = max(0, math.ceil(q / 100.0 * len(data)) - 1)
        return data[rank]

    def summary(self) -> Dict[str, float]:
        """The snapshot row: count/mean/p50/p95/p99 plus min/max/total."""
        data = sorted(self._sample)

        def rank(q: float) -> float:
            if not data:
                return 0.0
            return data[max(0, math.ceil(q / 100.0 * len(data)) - 1)]

        return {
            "count": self.count,
            "mean": self.mean,
            "p50": rank(50.0),
            "p95": rank(95.0),
            "p99": rank(99.0),
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "total": self.total,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:g})"


class TraceEvent:
    """One structured trace record (a routing hop, a split, a delivery).

    The constructor takes ownership of ``fields`` without copying (the
    registry hands it a fresh kwargs dict); pass a private dict when
    constructing events directly.
    """

    __slots__ = ("kind", "fields")

    def __init__(self, kind: str, fields: Mapping[str, object]) -> None:
        self.kind = kind
        self.fields = fields

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (``kind`` folded in) for JSON dumps."""
        record: Dict[str, object] = {"kind": self.kind}
        record.update(self.fields)
        return record

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceEvent({self.kind}, {self.fields})"


class MetricsRegistry:
    """Named counters, gauges, histograms, and a bounded trace ring.

    One registry spans an experiment (or a benchmark run); metric names are
    dotted paths (``routing.route.hops``, ``transport.delivered``).  All
    accessors create the instrument on first use, so instrumentation sites
    never need setup code.
    """

    def __init__(
        self,
        reservoir: int = DEFAULT_RESERVOIR,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
    ) -> None:
        self._reservoir = reservoir
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        # Raw (kind, fields) pairs; TraceEvent views are built lazily in
        # events() so the hot recording path skips one allocation.
        self._events: Deque[Tuple[str, Dict[str, object]]] = deque(
            maxlen=trace_capacity
        )
        #: Trace events appended over the registry's lifetime (the ring
        #: only retains the most recent ``trace_capacity`` of them).
        self.trace_appended = 0

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, reservoir=self._reservoir
            )
        return instrument

    # ------------------------------------------------------------------
    # Recording shorthands (what the instrumentation sites call)
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        self.histogram(name).observe(value)

    def trace(self, kind: str, /, **fields: object) -> None:
        """Append a structured trace event to the bounded ring.

        ``kind`` is positional-only so instrumentation sites may also use
        ``kind=...`` as an ordinary event field (message kinds do).
        """
        self._events.append((kind, fields))
        self.trace_appended += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counters(self) -> Tuple[Counter, ...]:
        """Every counter, sorted by name (for exporters)."""
        return tuple(self._counters[k] for k in sorted(self._counters))

    def gauges(self) -> Tuple[Gauge, ...]:
        """Every gauge, sorted by name (for exporters)."""
        return tuple(self._gauges[k] for k in sorted(self._gauges))

    def histograms(self) -> Tuple[Histogram, ...]:
        """Every histogram, sorted by name (for exporters)."""
        return tuple(self._histograms[k] for k in sorted(self._histograms))

    def events(self, kind: Optional[str] = None) -> Tuple[TraceEvent, ...]:
        """Retained trace events, optionally filtered by ``kind``."""
        if kind is None:
            return tuple(TraceEvent(k, f) for k, f in self._events)
        return tuple(
            TraceEvent(k, f) for k, f in self._events if k == kind
        )

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Uniform view: metric name -> ``{count, mean, p50, p95, p99, ...}``.

        Counters and gauges are folded into the same schema as one-sample
        distributions (their ``count`` is 1 and every percentile equals
        the value), so consumers of ``BENCH_*.json`` files can treat every
        row identically.
        """
        rows: Dict[str, Dict[str, float]] = {}
        for name, counter in self._counters.items():
            rows[name] = _point_row(counter.value)
        for name, gauge in self._gauges.items():
            rows[name] = _point_row(gauge.value)
        for name, histogram in self._histograms.items():
            rows[name] = histogram.summary()
        return dict(sorted(rows.items()))

    def to_json(self, indent: int = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Drop every instrument and trace event."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._events.clear()
        self.trace_appended = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)}, "
            f"events={len(self._events)})"
        )


def _point_row(value: float) -> Dict[str, float]:
    """The snapshot row of a single-valued instrument."""
    return {
        "count": 1,
        "mean": value,
        "p50": value,
        "p95": value,
        "p99": value,
        "min": value,
        "max": value,
        "total": value,
    }
