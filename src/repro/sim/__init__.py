"""Discrete-event simulation substrate.

The paper evaluated GeoGrid on a simulated 64 mi x 64 mi service area; this
package is that substrate, built from scratch:

* :mod:`repro.sim.scheduler` -- the virtual clock and event queue;
* :mod:`repro.sim.rng` -- named, independently-seeded random streams so
  every experiment is exactly reproducible;
* :mod:`repro.sim.latency` -- per-message latency models (constant,
  uniform, geographic-distance-proportional);
* :mod:`repro.sim.transport` -- the simulated network: endpoints,
  message delivery with latency, loss, and partitions;
* :mod:`repro.sim.churn` -- join/departure/failure processes;
* :mod:`repro.sim.chaos` -- seeded fault campaigns (asymmetric
  partitions, gray failures, crash-restart, regional outages, churn
  storms) driven to quiescence under the invariant auditor.

The message-level GeoGrid protocol (:mod:`repro.protocol`) runs on top of
this; the overlay model used by the paper-scale experiments does not need
it (it is synchronous by construction).
"""

from repro.sim.scheduler import Event, EventScheduler
from repro.sim.rng import RngStreams
from repro.sim.latency import (
    ConstantLatency,
    DistanceLatency,
    LatencyModel,
    UniformLatency,
)
from repro.sim.transport import (
    Endpoint,
    GrayFailure,
    Message,
    SimNetwork,
    TransportStats,
)
from repro.sim.churn import ChurnConfig, ChurnProcess

__all__ = [
    "Event",
    "EventScheduler",
    "RngStreams",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "DistanceLatency",
    "SimNetwork",
    "Message",
    "Endpoint",
    "GrayFailure",
    "TransportStats",
    "ChurnConfig",
    "ChurnProcess",
]
