"""The discrete-event scheduler: a virtual clock and an event queue.

Plain priority-queue design: events are ``(time, sequence, callback)``
entries; ``run_until`` pops them in timestamp order and advances the
clock.  Sequence numbers break timestamp ties FIFO, so simulations are
deterministic under equal-time events.

Cancelled events are not removed from the heap eagerly (that would be
O(N) per cancel); instead the scheduler keeps a live-event counter so
``pending()`` is O(1), and lazily compacts the heap whenever cancelled
entries outnumber live ones -- long-running simulations with heavy timer
churn (heartbeats re-armed and cancelled millions of times) stay bounded
in memory.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro import obs
from repro.errors import SimulationError
from repro.obs import causal

#: An event body; receives no arguments (close over what you need).
EventCallback = Callable[[], None]


@dataclass(order=True)
class Event:
    """One scheduled event (orderable by time, then sequence)."""

    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Causal context captured at scheduling time and restored around the
    #: callback, so timer-driven retries stay attributed to the operation
    #: that armed them.  ``None`` whenever tracing is off.
    ctx: Optional[causal.SpanContext] = field(
        default=None, compare=False, repr=False
    )
    #: Back-reference so ``cancel`` can keep the owning scheduler's
    #: live-event accounting exact; ``None`` for detached events.
    _scheduler: Optional["EventScheduler"] = field(
        default=None, compare=False, repr=False
    )
    #: Set once the callback has run; cancelling afterwards is a no-op.
    _fired: bool = field(default=False, compare=False, repr=False)

    def cancel(self) -> None:
        """Cancel the event; it will not fire.

        Idempotent, and a no-op after the event has fired.  The entry may
        linger in the owning scheduler's queue until it is popped or
        lazily purged, but it no longer counts as pending.
        """
        if self.cancelled or self._fired:
            return
        self.cancelled = True
        if self._scheduler is not None:
            self._scheduler._on_cancel()


class EventScheduler:
    """A virtual clock driving callbacks in timestamp order."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self._running = False
        #: Cancelled entries still sitting in the queue.
        self._cancelled_pending = 0
        #: Number of events fired over the scheduler's lifetime.
        self.fired = 0
        #: Number of cancellations over the scheduler's lifetime.
        self.cancelled_total = 0

    @property
    def now(self) -> float:
        """The current virtual time."""
        return self._now

    def pending(self) -> int:
        """Number of queued (non-cancelled) events; O(1)."""
        return len(self._queue) - self._cancelled_pending

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: float, callback: EventCallback) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: now={self._now}, "
                f"requested={time}"
            )
        event = Event(
            time=time,
            sequence=next(self._sequence),
            callback=callback,
            # Direct module-global read (not causal.current()) keeps the
            # disabled-mode cost of this hot path to one attribute lookup.
            ctx=causal._current,
            _scheduler=self,
        )
        heapq.heappush(self._queue, event)
        return event

    def after(self, delay: float, callback: EventCallback) -> Event:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.at(self._now + delay, callback)

    def every(
        self,
        interval: float,
        callback: EventCallback,
        jitter: float = 0.0,
        rng=None,
    ) -> Event:
        """Schedule a periodic callback (heartbeats, stat exchanges).

        Re-arms itself after each firing; cancel the *returned* event's
        most recent incarnation through the returned handle's ``cancel``
        (the handle is refreshed in place on each re-arm).  With ``jitter``
        > 0 and an ``rng``, each period is perturbed uniformly by up to
        ``+- jitter`` to avoid lock-step synchronization artifacts.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")

        handle_box: List[Event] = []

        def fire() -> None:
            # Periodic timers run *detached* from whatever context armed
            # them: heartbeats and sweeps are causal roots, otherwise every
            # firing for the rest of the run would accrete onto the trace
            # that happened to start the timer.  The re-arm happens while
            # detached too, so the chain stays clean.
            previous = causal.detach()
            try:
                callback()
                period = interval
                if jitter > 0.0 and rng is not None:
                    period = max(1e-9, interval + rng.uniform(-jitter, jitter))
                handle_box[0] = self.after(period, fire)
            finally:
                causal.restore(previous)

        handle_box.append(self.after(interval, fire))

        class _PeriodicHandle:
            def cancel(self) -> None:
                handle_box[0].cancel()

        handle = _PeriodicHandle()
        return handle  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------
    def _on_cancel(self) -> None:
        """Account one cancellation and compact the queue when stale
        entries exceed half of it."""
        self._cancelled_pending += 1
        self.cancelled_total += 1
        obs.inc("scheduler.cancelled")
        if self._cancelled_pending > len(self._queue) // 2:
            self._purge_cancelled()

    def _purge_cancelled(self) -> None:
        """Drop cancelled entries and re-heapify (amortized O(1) per
        cancel: each purge is linear but halves the queue at least)."""
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_pending = 0

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Fire events up to and including virtual time ``time``.

        Returns the number of events fired.  ``max_events`` guards against
        runaway feedback loops (an event scheduling itself at the same
        timestamp forever).
        """
        if self._running:
            raise SimulationError("run_until is not re-entrant")
        self._running = True
        fired = 0
        try:
            while self._queue and self._queue[0].time <= time:
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} before reaching "
                        f"t={time}; runaway event loop?"
                    )
                event = heapq.heappop(self._queue)
                if event.cancelled:
                    self._cancelled_pending -= 1
                    continue
                event._fired = True
                self._now = event.time
                if event.ctx is not None:
                    with causal.using(event.ctx):
                        event.callback()
                else:
                    event.callback()
                fired += 1
                self.fired += 1
            if math.isfinite(time):
                self._now = max(self._now, time)
        finally:
            self._running = False
            registry = obs.active()
            if registry is not None:
                registry.inc("scheduler.fired", fired)
                registry.set_gauge("scheduler.pending", self.pending())
                registry.set_gauge("scheduler.now", self._now)
        return fired

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Fire every queued event (bounded by ``max_events``)."""
        return self.run_until(float("inf"), max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventScheduler(now={self._now:g}, pending={self.pending()})"
