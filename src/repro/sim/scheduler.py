"""The discrete-event scheduler: a virtual clock and an event queue.

Plain priority-queue design: events are ``(time, sequence, callback)``
entries; ``run_until`` pops them in timestamp order and advances the
clock.  Sequence numbers break timestamp ties FIFO, so simulations are
deterministic under equal-time events.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import SimulationError

#: An event body; receives no arguments (close over what you need).
EventCallback = Callable[[], None]


@dataclass(order=True)
class Event:
    """One scheduled event (orderable by time, then sequence)."""

    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Cancel the event; it stays queued but will not fire."""
        self.cancelled = True


class EventScheduler:
    """A virtual clock driving callbacks in timestamp order."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self._running = False
        #: Number of events fired over the scheduler's lifetime.
        self.fired = 0

    @property
    def now(self) -> float:
        """The current virtual time."""
        return self._now

    def pending(self) -> int:
        """Number of queued (non-cancelled) events."""
        return sum(1 for event in self._queue if not event.cancelled)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: float, callback: EventCallback) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: now={self._now}, "
                f"requested={time}"
            )
        event = Event(time=time, sequence=next(self._sequence), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def after(self, delay: float, callback: EventCallback) -> Event:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.at(self._now + delay, callback)

    def every(
        self,
        interval: float,
        callback: EventCallback,
        jitter: float = 0.0,
        rng=None,
    ) -> Event:
        """Schedule a periodic callback (heartbeats, stat exchanges).

        Re-arms itself after each firing; cancel the *returned* event's
        most recent incarnation through the returned handle's ``cancel``
        (the handle is refreshed in place on each re-arm).  With ``jitter``
        > 0 and an ``rng``, each period is perturbed uniformly by up to
        ``+- jitter`` to avoid lock-step synchronization artifacts.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")

        handle_box: List[Event] = []

        def fire() -> None:
            callback()
            period = interval
            if jitter > 0.0 and rng is not None:
                period = max(1e-9, interval + rng.uniform(-jitter, jitter))
            handle_box[0] = self.after(period, fire)

        handle_box.append(self.after(interval, fire))

        class _PeriodicHandle:
            def cancel(self) -> None:
                handle_box[0].cancel()

        handle = _PeriodicHandle()
        return handle  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Fire events up to and including virtual time ``time``.

        Returns the number of events fired.  ``max_events`` guards against
        runaway feedback loops (an event scheduling itself at the same
        timestamp forever).
        """
        if self._running:
            raise SimulationError("run_until is not re-entrant")
        self._running = True
        fired = 0
        try:
            while self._queue and self._queue[0].time <= time:
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} before reaching "
                        f"t={time}; runaway event loop?"
                    )
                event = heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback()
                fired += 1
                self.fired += 1
            if math.isfinite(time):
                self._now = max(self._now, time)
        finally:
            self._running = False
        return fired

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Fire every queued event (bounded by ``max_events``)."""
        return self.run_until(float("inf"), max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventScheduler(now={self._now:g}, pending={self.pending()})"
