"""Per-message latency models for the simulated network.

GeoGrid's design bet is that geographic proximity approximates network
proximity, so the most interesting model here is :class:`DistanceLatency`:
latency grows linearly with the geographic distance between the two
endpoints.  Under it, GeoGrid's geographic routing produces low end-to-end
delay because consecutive hops are physical neighbors.
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.geometry import Point


class LatencyModel(Protocol):
    """Computes the one-way delay of a message between two coordinates."""

    def delay(
        self,
        source: Point,
        destination: Point,
        rng: random.Random,
    ) -> float:
        """One-way latency in virtual time units (> 0)."""
        ...


class ConstantLatency:
    """Every message takes the same time (the simplest useful model)."""

    def __init__(self, value: float = 1.0) -> None:
        if value <= 0:
            raise ValueError(f"latency must be positive, got {value!r}")
        self.value = value

    def delay(
        self, source: Point, destination: Point, rng: random.Random
    ) -> float:
        """The constant delay."""
        return self.value


class UniformLatency:
    """Latency uniform over ``[low, high]``, independent of distance."""

    def __init__(self, low: float = 0.5, high: float = 1.5) -> None:
        if low <= 0 or high < low:
            raise ValueError(
                f"need 0 < low <= high, got low={low!r} high={high!r}"
            )
        self.low = low
        self.high = high

    def delay(
        self, source: Point, destination: Point, rng: random.Random
    ) -> float:
        """A uniform draw from ``[low, high]``."""
        return rng.uniform(self.low, self.high)


class DistanceLatency:
    """Base delay plus a geographic-distance-proportional component.

    ``delay = base + distance * per_mile (optionally +- jitter_fraction)``.
    With the default parameters a message across the full 64-mile map takes
    about an order of magnitude longer than one between physical neighbors,
    which is the gradient GeoGrid's proximity routing exploits.
    """

    def __init__(
        self,
        base: float = 0.2,
        per_mile: float = 0.05,
        jitter_fraction: float = 0.1,
    ) -> None:
        if base <= 0 or per_mile < 0:
            raise ValueError(
                f"need base > 0 and per_mile >= 0, got base={base!r} "
                f"per_mile={per_mile!r}"
            )
        if not (0.0 <= jitter_fraction < 1.0):
            raise ValueError(
                f"jitter_fraction must lie in [0, 1), got {jitter_fraction!r}"
            )
        self.base = base
        self.per_mile = per_mile
        self.jitter_fraction = jitter_fraction

    def delay(
        self, source: Point, destination: Point, rng: random.Random
    ) -> float:
        """Distance-proportional delay with multiplicative jitter."""
        nominal = self.base + self.per_mile * source.distance_to(destination)
        if self.jitter_fraction == 0.0:
            return nominal
        factor = 1.0 + rng.uniform(-self.jitter_fraction, self.jitter_fraction)
        return nominal * factor
