"""Churn: unpredictable node join, departure and failure.

GeoGrid is explicitly designed for "unpredictable rate of node join,
departure and failure"; this process generates that environment.  Joins,
graceful departures and abrupt failures arrive as independent Poisson
processes (exponential interarrival times), bounded by a population band
so a long simulation neither empties nor explodes.

The process is target-agnostic: the experiment supplies ``spawn`` /
``remove`` callbacks, so the same churn driver exercises both the overlay
model and the message-level protocol cluster.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.sim.scheduler import EventScheduler

#: Creates and joins one new node; returns True when a join happened.
SpawnCallback = Callable[[], bool]
#: Removes one node; ``graceful`` distinguishes departure from failure.
#: Returns True when a removal happened.
RemoveCallback = Callable[[bool], bool]


@dataclass(frozen=True)
class ChurnConfig:
    """Rates (events per virtual time unit) and population bounds."""

    join_rate: float = 1.0
    leave_rate: float = 0.5
    fail_rate: float = 0.5
    min_population: int = 2
    max_population: int = 1_000_000

    def __post_init__(self) -> None:
        if min(self.join_rate, self.leave_rate, self.fail_rate) < 0:
            raise ConfigurationError("churn rates must be >= 0")
        if self.join_rate + self.leave_rate + self.fail_rate <= 0:
            raise ConfigurationError("at least one churn rate must be positive")
        if self.min_population < 1:
            raise ConfigurationError(
                f"min_population must be >= 1, got {self.min_population}"
            )
        if self.max_population < self.min_population:
            raise ConfigurationError("max_population < min_population")


class ChurnProcess:
    """Drives churn events on the scheduler until stopped."""

    def __init__(
        self,
        scheduler: EventScheduler,
        rng: random.Random,
        config: ChurnConfig,
        spawn: SpawnCallback,
        remove: RemoveCallback,
        population: Callable[[], int],
    ) -> None:
        self.scheduler = scheduler
        self.rng = rng
        self.config = config
        self.spawn = spawn
        self.remove = remove
        self.population = population
        self.joins = 0
        self.departures = 0
        self.failures = 0
        self.suppressed = 0
        self._running = False

    @property
    def total_events(self) -> int:
        """Churn events that actually mutated the system."""
        return self.joins + self.departures + self.failures

    def start(self) -> None:
        """Begin generating churn events."""
        if self._running:
            return
        self._running = True
        self._arm()

    def stop(self) -> None:
        """Stop after the currently armed event (if any) fires."""
        self._running = False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _arm(self) -> None:
        total_rate = (
            self.config.join_rate + self.config.leave_rate + self.config.fail_rate
        )
        delay = self.rng.expovariate(total_rate)
        self.scheduler.after(delay, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        u = self.rng.random() * (
            self.config.join_rate + self.config.leave_rate + self.config.fail_rate
        )
        if u < self.config.join_rate:
            self._try_join()
        elif u < self.config.join_rate + self.config.leave_rate:
            self._try_remove(graceful=True)
        else:
            self._try_remove(graceful=False)
        self._arm()

    def _try_join(self) -> None:
        if self.population() >= self.config.max_population:
            self.suppressed += 1
            return
        if self.spawn():
            self.joins += 1
        else:
            self.suppressed += 1

    def _try_remove(self, graceful: bool) -> None:
        if self.population() <= self.config.min_population:
            self.suppressed += 1
            return
        if self.remove(graceful):
            if graceful:
                self.departures += 1
            else:
                self.failures += 1
        else:
            self.suppressed += 1
