"""The simulated network transport.

Endpoints register under a :class:`~repro.core.node.NodeAddress`; sending
a message schedules its delivery on the event scheduler after a latency
drawn from the configured model.  The transport supports the failure modes
the protocol layer is tested against:

* message loss (uniform drop probability),
* crashed endpoints (messages to them vanish, like TCP RSTs to a dead
  host),
* network partitions (named groups that cannot reach each other).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro import obs
from repro.errors import TransportError
from repro.geometry import Point
from repro.core.node import NodeAddress
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.scheduler import EventScheduler


@dataclass(frozen=True)
class Message:
    """One message in flight (or delivered)."""

    source: NodeAddress
    destination: NodeAddress
    kind: str
    body: Any
    sent_at: float


#: An endpoint's receive handler.
MessageHandler = Callable[[Message], None]


@dataclass
class Endpoint:
    """A registered protocol endpoint."""

    address: NodeAddress
    coord: Point
    handler: MessageHandler
    alive: bool = True


@dataclass
class TransportStats:
    """Counters describing everything the transport did."""

    sent: int = 0
    delivered: int = 0
    dropped_random: int = 0
    dropped_dead: int = 0
    dropped_partition: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    def record_send(self, kind: str) -> None:
        """Account one send of a message of ``kind``."""
        self.sent += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1


class SimNetwork:
    """The message bus connecting simulated GeoGrid nodes."""

    def __init__(
        self,
        scheduler: EventScheduler,
        rng: random.Random,
        latency: Optional[LatencyModel] = None,
        drop_probability: float = 0.0,
    ) -> None:
        if not (0.0 <= drop_probability < 1.0):
            raise TransportError(
                f"drop_probability must lie in [0, 1), got "
                f"{drop_probability!r}"
            )
        self.scheduler = scheduler
        self.rng = rng
        self.latency = latency if latency is not None else ConstantLatency(1.0)
        self.drop_probability = drop_probability
        self.stats = TransportStats()
        self._endpoints: Dict[NodeAddress, Endpoint] = {}
        self._partition_of: Dict[NodeAddress, str] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(
        self, address: NodeAddress, coord: Point, handler: MessageHandler
    ) -> Endpoint:
        """Attach an endpoint to the network."""
        if address in self._endpoints and self._endpoints[address].alive:
            raise TransportError(f"address {address} is already registered")
        endpoint = Endpoint(address=address, coord=coord, handler=handler)
        self._endpoints[address] = endpoint
        return endpoint

    def deregister(self, address: NodeAddress) -> None:
        """Graceful detach (a departing node closes its sockets)."""
        self._endpoints.pop(address, None)
        self._partition_of.pop(address, None)

    def crash(self, address: NodeAddress) -> None:
        """Abrupt failure: the endpoint stays known but silently drops
        everything, which is what a failed host looks like to its peers."""
        endpoint = self._endpoints.get(address)
        if endpoint is None:
            raise TransportError(f"cannot crash unknown address {address}")
        endpoint.alive = False

    def is_alive(self, address: NodeAddress) -> bool:
        """Whether the endpoint is registered and not crashed."""
        endpoint = self._endpoints.get(address)
        return endpoint is not None and endpoint.alive

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def set_partition(self, address: NodeAddress, group: str) -> None:
        """Place an endpoint in partition ``group``.

        Endpoints in different groups cannot exchange messages; endpoints
        without a group reach everyone.
        """
        self._partition_of[address] = group

    def heal_partitions(self) -> None:
        """Remove all partition assignments."""
        self._partition_of.clear()

    def _partitioned(self, a: NodeAddress, b: NodeAddress) -> bool:
        group_a = self._partition_of.get(a)
        group_b = self._partition_of.get(b)
        if group_a is None or group_b is None:
            return False
        return group_a != group_b

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        source: NodeAddress,
        destination: NodeAddress,
        kind: str,
        body: Any,
    ) -> None:
        """Send a message; delivery is scheduled, never synchronous.

        Sends never fail at the caller: a dead destination, a partition or
        random loss all look identical to the sender (silence), exactly as
        over UDP/best-effort delivery -- failure *detection* is the
        protocol layer's job (heartbeats and timeouts).
        """
        self.stats.record_send(kind)
        obs.inc("transport.sent")
        message = Message(
            source=source,
            destination=destination,
            kind=kind,
            body=body,
            sent_at=self.scheduler.now,
        )
        if self._partitioned(source, destination):
            self.stats.dropped_partition += 1
            obs.inc("transport.dropped.partition")
            return
        if self.drop_probability > 0.0 and self.rng.random() < self.drop_probability:
            self.stats.dropped_random += 1
            obs.inc("transport.dropped.random")
            return
        source_endpoint = self._endpoints.get(source)
        source_coord = (
            source_endpoint.coord if source_endpoint is not None else Point(0.0, 0.0)
        )
        destination_endpoint = self._endpoints.get(destination)
        if destination_endpoint is None:
            self.stats.dropped_dead += 1
            obs.inc("transport.dropped.dead")
            return
        delay = self.latency.delay(
            source_coord, destination_endpoint.coord, self.rng
        )
        self.scheduler.after(delay, lambda: self._deliver(message))

    def _deliver(self, message: Message) -> None:
        endpoint = self._endpoints.get(message.destination)
        if endpoint is None or not endpoint.alive:
            self.stats.dropped_dead += 1
            obs.inc("transport.dropped.dead")
            return
        if self._partitioned(message.source, message.destination):
            self.stats.dropped_partition += 1
            obs.inc("transport.dropped.partition")
            return
        self.stats.delivered += 1
        registry = obs.active()
        if registry is not None:
            registry.inc("transport.delivered")
            registry.observe(
                "transport.latency", self.scheduler.now - message.sent_at
            )
            registry.trace(
                "delivery",
                kind=message.kind,
                source=str(message.source),
                destination=str(message.destination),
                latency=self.scheduler.now - message.sent_at,
            )
        endpoint.handler(message)

    def endpoint_count(self) -> int:
        """Number of live endpoints."""
        return sum(1 for endpoint in self._endpoints.values() if endpoint.alive)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimNetwork(endpoints={self.endpoint_count()}, "
            f"sent={self.stats.sent}, delivered={self.stats.delivered})"
        )
