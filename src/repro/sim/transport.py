"""The simulated network transport.

Endpoints register under a :class:`~repro.core.node.NodeAddress`; sending
a message schedules its delivery on the event scheduler after a latency
drawn from the configured model.  The transport supports the failure modes
the protocol layer is tested against:

* message loss (uniform drop probability),
* crashed endpoints (messages to them vanish, like TCP RSTs to a dead
  host),
* network partitions (named groups that cannot reach each other),
* asymmetric (one-way) link failures: traffic from A to B silently
  vanishes while B can still reach A -- the partition shape that breaks
  naive "I heard from you so you can hear me" reasoning,
* gray failures: an endpoint whose NIC silently drops and/or delays a
  *fraction* of its traffic in both directions, without ever looking
  dead to a binary health check,
* network-wide latency surges (``extra_latency``), modelling congestion
  spikes.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from repro import obs
from repro.errors import TransportError
from repro.geometry import Point
from repro.core.node import NodeAddress
from repro.obs import causal
from repro.obs.telemetry import EVENT_SAMPLE
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.scheduler import EventScheduler


@dataclass(frozen=True)
class Message:
    """One message in flight (or delivered)."""

    source: NodeAddress
    destination: NodeAddress
    kind: str
    body: Any
    sent_at: float
    #: Monotonic per-network id; makes every send (and hence every drop)
    #: individually attributable.  ``-1`` only for hand-built messages.
    msg_id: int = -1
    #: Causal span of this message, inherited from the sender's context
    #: (``None`` when tracing is off).
    span: Optional[causal.SpanContext] = None


#: An endpoint's receive handler.
MessageHandler = Callable[[Message], None]


@dataclass
class Endpoint:
    """A registered protocol endpoint."""

    address: NodeAddress
    coord: Point
    handler: MessageHandler
    alive: bool = True


#: How many recent drops :class:`TransportStats` remembers individually.
RECENT_DROP_LIMIT = 256


@dataclass(frozen=True)
class GrayFailure:
    """A silently misbehaving endpoint (the classic gray failure).

    Both inbound and outbound traffic of the afflicted endpoint is
    subject to the same treatment: each message is dropped with
    ``drop_fraction`` probability, and (independently) delayed by
    ``extra_delay`` with ``delay_fraction`` probability.  The endpoint
    itself keeps running and answering, so no binary liveness check ever
    sees anything wrong -- only end-to-end timeouts do.
    """

    drop_fraction: float = 0.0
    extra_delay: float = 0.0
    delay_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.drop_fraction <= 1.0):
            raise TransportError(
                f"drop_fraction must lie in [0, 1], got {self.drop_fraction!r}"
            )
        if self.extra_delay < 0.0:
            raise TransportError(
                f"extra_delay must be >= 0, got {self.extra_delay!r}"
            )
        if not (0.0 <= self.delay_fraction <= 1.0):
            raise TransportError(
                f"delay_fraction must lie in [0, 1], got "
                f"{self.delay_fraction!r}"
            )


@dataclass
class TransportStats:
    """Counters describing everything the transport did."""

    sent: int = 0
    delivered: int = 0
    dropped_random: int = 0
    dropped_dead: int = 0
    dropped_partition: int = 0
    dropped_gray: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    #: The most recent drops as ``(msg_id, kind, reason)`` -- enough to
    #: attribute a silent failure to a specific send without the journal.
    recent_drops: Deque[Tuple[int, str, str]] = field(
        default_factory=lambda: deque(maxlen=RECENT_DROP_LIMIT)
    )

    def record_send(self, kind: str) -> None:
        """Account one send of a message of ``kind``."""
        self.sent += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1

    def record_drop(self, msg_id: int, kind: str, reason: str) -> None:
        """Account one drop (``reason`` in random/dead/partition/gray)."""
        if reason == "random":
            self.dropped_random += 1
        elif reason == "dead":
            self.dropped_dead += 1
        elif reason == "partition":
            self.dropped_partition += 1
        elif reason == "gray":
            self.dropped_gray += 1
        else:
            raise TransportError(f"unknown drop reason {reason!r}")
        self.recent_drops.append((msg_id, kind, reason))


class SimNetwork:
    """The message bus connecting simulated GeoGrid nodes."""

    def __init__(
        self,
        scheduler: EventScheduler,
        rng: random.Random,
        latency: Optional[LatencyModel] = None,
        drop_probability: float = 0.0,
    ) -> None:
        if not (0.0 <= drop_probability < 1.0):
            raise TransportError(
                f"drop_probability must lie in [0, 1), got "
                f"{drop_probability!r}"
            )
        self.scheduler = scheduler
        self.rng = rng
        self.latency = latency if latency is not None else ConstantLatency(1.0)
        self.drop_probability = drop_probability
        self.stats = TransportStats()
        #: Flat extra delay added to every delivery (latency surge knob).
        self.extra_latency = 0.0
        self._endpoints: Dict[NodeAddress, Endpoint] = {}
        self._partition_of: Dict[NodeAddress, str] = {}
        #: Directed links that silently eat traffic: ``(src, dst)`` pairs.
        self._one_way_blocks: set = set()
        #: Per-endpoint gray-failure behavior.
        self._gray: Dict[NodeAddress, GrayFailure] = {}
        self._msg_ids = itertools.count(1)
        #: Per-source egress observers (the telemetry plane's vitals
        #: frames), accounted for every send originating at the source,
        #: before any drop verdict -- the sender cannot see drops.  The
        #: countdown tick is inlined into :meth:`send` rather than
        #: dispatched through a callable: this fires on every message in
        #: the simulation, and the function-call overhead alone was a
        #: measurable share of the telemetry plane's cost.
        self._send_frames: Dict[NodeAddress, Any] = {}
        #: Scheduled-but-undelivered message counts per destination, the
        #: simulation's stand-in for an ingress socket queue depth.
        self._in_flight: Dict[NodeAddress, int] = {}
        self._peak_in_flight: Dict[NodeAddress, int] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(
        self, address: NodeAddress, coord: Point, handler: MessageHandler
    ) -> Endpoint:
        """Attach an endpoint to the network."""
        if address in self._endpoints and self._endpoints[address].alive:
            raise TransportError(f"address {address} is already registered")
        endpoint = Endpoint(address=address, coord=coord, handler=handler)
        self._endpoints[address] = endpoint
        return endpoint

    def deregister(self, address: NodeAddress) -> None:
        """Graceful detach (a departing node closes its sockets)."""
        self._endpoints.pop(address, None)
        self._partition_of.pop(address, None)
        self._send_frames.pop(address, None)

    def crash(self, address: NodeAddress) -> None:
        """Abrupt failure: the endpoint stays known but silently drops
        everything, which is what a failed host looks like to its peers."""
        endpoint = self._endpoints.get(address)
        if endpoint is None:
            raise TransportError(f"cannot crash unknown address {address}")
        endpoint.alive = False

    def is_alive(self, address: NodeAddress) -> bool:
        """Whether the endpoint is registered and not crashed."""
        endpoint = self._endpoints.get(address)
        return endpoint is not None and endpoint.alive

    # ------------------------------------------------------------------
    # Telemetry hooks
    # ------------------------------------------------------------------
    def set_send_frame(self, address: NodeAddress, frame: Any) -> None:
        """Account every send originating at ``address`` to ``frame``.

        One frame per source; ``frame`` is a
        :class:`repro.obs.telemetry.VitalsFrame` (duck-typed -- anything
        with its ``send_countdown`` / ``_sent_accounted`` /
        ``sent_by_kind`` egress-accounting attributes works, which is
        what :meth:`send` inlines).  Accounting happens before any drop
        verdict -- over a best-effort transport the sender cannot see
        drops, so it measures what the node *tried* to send.
        """
        self._send_frames[address] = frame

    def clear_send_frame(self, address: NodeAddress) -> None:
        """Remove ``address``'s send observer (no-op when absent)."""
        self._send_frames.pop(address, None)

    def in_flight_to(self, address: NodeAddress) -> int:
        """Messages scheduled for delivery to ``address`` right now.

        The closest simulation analogue of an ingress queue depth: how
        much traffic has been committed to this endpoint but not yet
        handed to its handler.
        """
        return self._in_flight.get(address, 0)

    def peak_in_flight_to(self, address: NodeAddress) -> int:
        """High-water mark of :meth:`in_flight_to` since the last reset.

        The overload plane's bounded-queue evidence: admission control
        keeps this below the node's budget plus the burst that was
        already committed when the budget filled.
        """
        return self._peak_in_flight.get(address, 0)

    def max_peak_in_flight(self) -> int:
        """The largest per-endpoint queue-depth peak since the last reset."""
        return max(self._peak_in_flight.values(), default=0)

    def reset_peak_in_flight(self) -> None:
        """Forget all queue-depth peaks (e.g. after join-time churn)."""
        self._peak_in_flight.clear()

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def set_partition(self, address: NodeAddress, group: str) -> None:
        """Place an endpoint in partition ``group``.

        Endpoints in different groups cannot exchange messages; endpoints
        without a group reach everyone.  For *asymmetric* failures --
        where only one direction of a link is cut -- use
        :meth:`block_one_way` instead; both kinds of cut account their
        drops under the ``partition`` reason and are lifted together by
        :meth:`heal_partitions`.
        """
        self._partition_of[address] = group

    def block_one_way(
        self, source: NodeAddress, destination: NodeAddress
    ) -> None:
        """Silently eat all traffic from ``source`` to ``destination``.

        The reverse direction is untouched: ``destination`` still reaches
        ``source``, which is exactly the asymmetric-partition shape that
        defeats "I can hear you, so you can hear me" reasoning (one side
        suspects the other while being believed alive itself).
        """
        self._one_way_blocks.add((source, destination))

    def unblock_one_way(
        self, source: NodeAddress, destination: NodeAddress
    ) -> None:
        """Lift a single one-way block (no-op when absent)."""
        self._one_way_blocks.discard((source, destination))

    def heal_partitions(self) -> None:
        """Remove all partition assignments and one-way blocks."""
        self._partition_of.clear()
        self._one_way_blocks.clear()

    def _partitioned(self, a: NodeAddress, b: NodeAddress) -> bool:
        if (a, b) in self._one_way_blocks:
            return True
        group_a = self._partition_of.get(a)
        group_b = self._partition_of.get(b)
        if group_a is None or group_b is None:
            return False
        return group_a != group_b

    # ------------------------------------------------------------------
    # Gray failures
    # ------------------------------------------------------------------
    def set_gray(
        self,
        address: NodeAddress,
        drop_fraction: float = 0.0,
        extra_delay: float = 0.0,
        delay_fraction: float = 1.0,
    ) -> None:
        """Afflict ``address`` with a gray failure (see :class:`GrayFailure`)."""
        self._gray[address] = GrayFailure(
            drop_fraction=drop_fraction,
            extra_delay=extra_delay,
            delay_fraction=delay_fraction,
        )

    def clear_gray(self, address: Optional[NodeAddress] = None) -> None:
        """Heal one endpoint's gray failure, or all of them."""
        if address is None:
            self._gray.clear()
        else:
            self._gray.pop(address, None)

    def _gray_verdict(
        self, source: NodeAddress, destination: NodeAddress
    ) -> Tuple[bool, float]:
        """Whether gray failures eat this message, and any extra delay.

        Draws from the rng only for afflicted endpoints, so simulations
        without gray failures replay the exact same random sequence as
        before the knob existed.
        """
        extra = 0.0
        for endpoint in (source, destination):
            gray = self._gray.get(endpoint)
            if gray is None:
                continue
            if gray.drop_fraction > 0.0 and self.rng.random() < gray.drop_fraction:
                return True, 0.0
            if gray.extra_delay > 0.0:
                if gray.delay_fraction >= 1.0:
                    extra += gray.extra_delay
                elif self.rng.random() < gray.delay_fraction:
                    extra += gray.extra_delay
        return False, extra

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        source: NodeAddress,
        destination: NodeAddress,
        kind: str,
        body: Any,
    ) -> None:
        """Send a message; delivery is scheduled, never synchronous.

        Sends never fail at the caller: a dead destination, a partition or
        random loss all look identical to the sender (silence), exactly as
        over UDP/best-effort delivery -- failure *detection* is the
        protocol layer's job (heartbeats and timeouts).
        """
        self.stats.record_send(kind)
        obs.inc("sim.transport.sent")
        frame = self._send_frames.get(source)
        if frame is not None:
            # Inlined VitalsFrame.on_send (see set_send_frame): a bare
            # countdown tick on the common path, full accounting on the
            # sampled 1-in-EVENT_SAMPLE event.
            n = frame.send_countdown - 1
            if n:
                frame.send_countdown = n
            else:
                frame.send_countdown = EVENT_SAMPLE
                frame._sent_accounted += EVENT_SAMPLE
                frame.sent_by_kind[kind] += EVENT_SAMPLE
        recorder = obs.flightrec()
        span = None
        if recorder is not None:
            # Each message is one span of the sender's current trace (or a
            # fresh trace when the send is a causal root, e.g. a client
            # request arriving from outside the simulation).
            parent = causal.current()
            span = causal.SpanContext(
                trace_id=(
                    parent.trace_id
                    if parent is not None
                    else recorder.next_trace_id()
                ),
                span_id=recorder.next_span_id(),
            )
        message = Message(
            source=source,
            destination=destination,
            kind=kind,
            body=body,
            sent_at=self.scheduler.now,
            msg_id=next(self._msg_ids),
            span=span,
        )
        if recorder is not None:
            recorder.record(
                "send",
                self.scheduler.now,
                msg_id=message.msg_id,
                msg_kind=kind,
                source=str(source),
                destination=str(destination),
                trace_id=span.trace_id,
                span_id=span.span_id,
                parent_span=(
                    causal.current().span_id
                    if causal.current() is not None
                    else None
                ),
            )
        if self._partitioned(source, destination):
            self._drop(message, "partition")
            return
        if self.drop_probability > 0.0 and self.rng.random() < self.drop_probability:
            self._drop(message, "random")
            return
        gray_dropped, gray_delay = (
            self._gray_verdict(source, destination)
            if self._gray
            else (False, 0.0)
        )
        if gray_dropped:
            self._drop(message, "gray")
            return
        source_endpoint = self._endpoints.get(source)
        source_coord = (
            source_endpoint.coord if source_endpoint is not None else Point(0.0, 0.0)
        )
        destination_endpoint = self._endpoints.get(destination)
        if destination_endpoint is None:
            self._drop(message, "dead")
            return
        delay = self.latency.delay(
            source_coord, destination_endpoint.coord, self.rng
        )
        delay += self.extra_latency + gray_delay
        depth = self._in_flight.get(destination, 0) + 1
        self._in_flight[destination] = depth
        if depth > self._peak_in_flight.get(destination, 0):
            self._peak_in_flight[destination] = depth
        self.scheduler.after(delay, lambda: self._deliver(message))

    def _drop(self, message: Message, reason: str) -> None:
        """Account a dropped message in stats, metrics, and the journal."""
        self.stats.record_drop(message.msg_id, message.kind, reason)
        obs.inc(f"sim.transport.dropped.{reason}")
        recorder = obs.flightrec()
        if recorder is not None:
            fields: Dict[str, Any] = {
                "msg_id": message.msg_id,
                "msg_kind": message.kind,
                "reason": reason,
            }
            if message.span is not None:
                fields["trace_id"] = message.span.trace_id
                fields["span_id"] = message.span.span_id
            recorder.record("drop", self.scheduler.now, **fields)

    def _deliver(self, message: Message) -> None:
        count = self._in_flight.get(message.destination, 0)
        if count <= 1:
            self._in_flight.pop(message.destination, None)
        else:
            self._in_flight[message.destination] = count - 1
        endpoint = self._endpoints.get(message.destination)
        if endpoint is None or not endpoint.alive:
            self._drop(message, "dead")
            return
        if self._partitioned(message.source, message.destination):
            self._drop(message, "partition")
            return
        self.stats.delivered += 1
        registry = obs.active()
        if registry is not None:
            registry.inc("sim.transport.delivered")
            registry.observe(
                "sim.transport.latency", self.scheduler.now - message.sent_at
            )
            registry.trace(
                "delivery",
                kind=message.kind,
                msg_id=message.msg_id,
                source=str(message.source),
                destination=str(message.destination),
                latency=self.scheduler.now - message.sent_at,
            )
        recorder = obs.flightrec()
        if recorder is not None:
            fields = {
                "msg_id": message.msg_id,
                "latency": self.scheduler.now - message.sent_at,
            }
            if message.span is not None:
                fields["trace_id"] = message.span.trace_id
                fields["span_id"] = message.span.span_id
            recorder.record("deliver", self.scheduler.now, **fields)
        # The handler runs *inside* the message's causal context, so any
        # message it sends (or timer it arms) chains to this delivery.
        with causal.using(message.span):
            endpoint.handler(message)

    def endpoint_count(self) -> int:
        """Number of live endpoints."""
        return sum(1 for endpoint in self._endpoints.values() if endpoint.alive)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimNetwork(endpoints={self.endpoint_count()}, "
            f"sent={self.stats.sent}, delivered={self.stats.delivered})"
        )
