"""Named, independently-seeded random streams.

Every stochastic component of an experiment (node placement, capacities,
hot-spot motion, entry-node choice, transport latency...) draws from its
own stream derived from one master seed.  Changing how many draws one
component makes then never perturbs the others -- the property that makes
"same seed, same network" hold across code changes, and variance across
trials attributable to the intended source.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict


class RngStreams:
    """A factory of named ``random.Random`` streams under one master seed."""

    def __init__(self, master_seed: int) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created on first use, then cached)."""
        if name not in self._streams:
            self._streams[name] = random.Random(self.seed_for(name))
        return self._streams[name]

    def seed_for(self, name: str) -> int:
        """The derived seed for stream ``name`` (stable across runs).

        Uses CRC32 of the name (stable across processes, unlike ``hash``)
        mixed with the master seed.
        """
        digest = zlib.crc32(name.encode("utf-8"))
        return (self.master_seed * 1_000_003 + digest) & 0x7FFF_FFFF_FFFF_FFFF

    def fork(self, salt: int) -> "RngStreams":
        """A derived family of streams (e.g. one per experiment trial)."""
        return RngStreams(self.seed_for(f"fork:{salt}"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RngStreams(master_seed={self.master_seed}, "
            f"streams={sorted(self._streams)})"
        )
