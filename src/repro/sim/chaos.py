"""Deterministic fault-campaign runner for the message-level protocol.

The reliability claims of :mod:`repro.protocol.reliable` -- critical
exchanges survive loss, nodes converge back to a proper partition after
faults, no stored location object is ever lost outright -- are only as
good as the faults they are tested against.  This module executes a
*seeded schedule* of the nastiest fault shapes the transport can model:

* asymmetric one-way partitions (A cannot reach B while B reaches A),
* gray failures (an endpoint silently dropping/delaying a fraction of
  its traffic while looking healthy),
* crash-with-rejoin (abrupt node loss followed by a fresh replacement),
* correlated regional outages (every region touching an area loses one
  of its owners at once),
* network-wide drop/latency spikes,
* a churn storm (Poisson join/depart/fail bursts).

Each scenario builds a cluster, stores a population of location
objects, injects its faults while update traffic keeps flowing, heals,
lets the system recover, and then drives the
:class:`repro.obs.audit.InvariantAuditor` to quiescence: the verdict
re-runs every invariant check twice, one audit interval apart, and only
violations present in *both* passes count (in-flight repair traffic is
not a failure; frozen damage is).  A scenario passes when no violation
persists and every object stored before the faults is still held by
some live owner.  Dead-letter and retry tallies from every node's
reliable channel are reported alongside, so a campaign quantifies what
the network refused to carry.

Everything is deterministic: same seed, same schedule, same verdict.
Run it from the CLI with ``python -m repro chaos`` (writes
``BENCH_chaos.json``).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from repro.errors import ConfigurationError, SimulationError
from repro.geometry import Point, Rect

__all__ = [
    "ChaosConfig",
    "ScenarioResult",
    "CampaignReport",
    "SCENARIOS",
    "run_scenario",
    "run_campaign",
    "run_pubsub_campaign",
    "measure_reliable_overhead",
]


@dataclass(frozen=True)
class ChaosConfig:
    """One campaign's knobs (every scenario runs the same schedule shape)."""

    seed: int = 7
    #: Nodes joined before any fault is injected.
    population: int = 10
    #: Location objects stored (and verified present at the end).
    objects: int = 16
    #: Baseline random drop probability during the whole scenario.
    drop_probability: float = 0.05
    #: Sim time the cluster settles before faults start.
    warmup: float = 40.0
    #: Sim time the injected faults stay active.
    fault_duration: float = 40.0
    #: Sim time between healing the faults and the quiescence verdict
    #: (failure detection, claim confrontation and rejoins need several
    #: failure-timeout periods to play out).
    recovery: float = 200.0
    #: Interval of the attached continuous invariant auditor; also the
    #: spacing of the two verdict passes.
    audit_interval: float = 5.0
    #: In-band gray-failure detection budget, in heartbeat intervals
    #: counted from fault injection.  The gray scenario *fails* unless
    #: some live node's neighborhood health view flags the victim within
    #: this many ticks -- and every scenario fails if any node flags a
    #: peer that was not the injected gray victim (zero false positives).
    detection_budget_ticks: int = 12
    #: Continuous queries registered (and acked) before faults in the
    #: pubsub campaign; the plain campaign never reads these two knobs.
    subscriptions: int = 6
    #: Targeted events per pubsub burst (one burst before the faults,
    #: one after recovery).
    pubsub_events: int = 8

    def __post_init__(self) -> None:
        if self.population < 4:
            raise ConfigurationError(
                f"population must be >= 4, got {self.population}"
            )
        if self.objects < 1:
            raise ConfigurationError(f"objects must be >= 1, got {self.objects}")
        if not (0.0 <= self.drop_probability < 0.5):
            raise ConfigurationError(
                f"drop_probability must lie in [0, 0.5), got "
                f"{self.drop_probability!r}"
            )
        for name in ("warmup", "fault_duration", "recovery"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.audit_interval <= 0:
            raise ConfigurationError("audit_interval must be positive")
        if self.detection_budget_ticks < 1:
            raise ConfigurationError(
                "detection_budget_ticks must be >= 1, got "
                f"{self.detection_budget_ticks}"
            )
        if self.subscriptions < 1:
            raise ConfigurationError(
                f"subscriptions must be >= 1, got {self.subscriptions}"
            )
        if self.pubsub_events < 1:
            raise ConfigurationError(
                f"pubsub_events must be >= 1, got {self.pubsub_events}"
            )


@dataclass
class ScenarioResult:
    """The verdict of one fault scenario."""

    name: str
    seed: int
    ok: bool
    #: Invariant violations that persisted across both verdict passes.
    violations: List[str]
    #: Objects stored before the faults that no live owner holds anymore.
    lost_objects: int
    objects: int
    #: Reliable-channel tallies summed over every node.
    dead_letters: int
    retries: int
    acked: int
    duplicates: int
    #: Total sim time the scenario ran.
    sim_time: float
    #: Scenario-specific notes (what was injected, on whom).
    detail: str = ""
    #: Address of the injected gray endpoint, when this scenario must
    #: detect one in-band (``None`` everywhere else).
    gray_expected: Optional[str] = None
    #: When the in-band telemetry plane first flagged the gray victim,
    #: in heartbeat ticks after fault injection (``None`` = never).
    detect_ticks: Optional[float] = None
    #: The detection budget the scenario ran under (heartbeat ticks).
    detect_budget: Optional[int] = None
    #: ``flagger->flagged`` pairs naming anyone other than the injected
    #: gray victim (must stay empty in every scenario).
    false_positives: List[str] = field(default_factory=list)
    #: Oracle-expected notification deliveries across the pubsub
    #: campaign's asserted bursts (0 in the plain campaign).
    expected_notifications: int = 0
    #: Expected deliveries that never arrived despite application-level
    #: publish retries -- a committed continuous query stranded by
    #: restructuring (must stay 0).
    lost_notifications: int = 0
    #: Overload-plane tallies (the flash_crowd scenario; 0 elsewhere):
    #: messages shed by ingress admission, forwarding decisions deflected
    #: around saturated nodes, and control-class sheds (must stay 0 --
    #: admission never touches membership/failover traffic).
    sheds: int = 0
    deflections: int = 0
    control_sheds: int = 0
    #: Largest per-node ingress queue depth observed during the storm,
    #: and the bound it had to stay under (0 = not asserted).
    peak_queue_depth: int = 0
    queue_bound: int = 0

    def summary(self) -> str:
        verdict = "ok" if self.ok else "FAIL"
        line = (
            f"{self.name:<22} {verdict:<5} "
            f"violations={len(self.violations):<3} "
            f"lost={self.lost_objects}/{self.objects:<4} "
            f"retries={self.retries:<5} dead_letters={self.dead_letters:<4} "
            f"t={self.sim_time:g}"
        )
        if self.gray_expected is not None:
            mark = (
                f"{self.detect_ticks:g}t"
                if self.detect_ticks is not None
                else "none"
            )
            line += f" detect={mark}/{self.detect_budget}t"
        if self.false_positives:
            line += f" false_positives={len(self.false_positives)}"
        if self.expected_notifications:
            delivered = self.expected_notifications - self.lost_notifications
            line += f" notify={delivered}/{self.expected_notifications}"
        if self.sheds or self.deflections:
            line += (
                f" shed={self.sheds} deflect={self.deflections}"
                f" peak_q={self.peak_queue_depth}/{self.queue_bound}"
            )
        return line


@dataclass
class CampaignReport:
    """Every scenario's result plus campaign-level rollups."""

    seed: int
    results: List[ScenarioResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def render(self) -> str:
        lines = [f"=== chaos campaign (seed {self.seed}) ==="]
        for result in self.results:
            lines.append(result.summary())
            if result.detail:
                lines.append(f"    {result.detail}")
            for violation in result.violations:
                lines.append(f"    persistent: {violation}")
        failed = sum(1 for result in self.results if not result.ok)
        lines.append(
            f"{len(self.results)} scenario(s), {failed} failed"
        )
        return "\n".join(lines)


class _Arena:
    """One scenario's cluster plus the bookkeeping the verdict needs."""

    BOUNDS = Rect(0.0, 0.0, 64.0, 64.0)

    def __init__(
        self, config: ChaosConfig, scenario: str, node_config: Any = None
    ) -> None:
        # Protocol imports stay local so ``repro.sim`` never depends on
        # ``repro.protocol`` at import time (the dependency points the
        # other way everywhere else).
        from repro.protocol.cluster import ProtocolCluster

        self.config = config
        self.seed = config.seed
        # Each scenario draws its schedule from an independent
        # deterministic stream derived from (campaign seed, name).
        self.rng = random.Random(f"{config.seed}:{scenario}")
        self.cluster = ProtocolCluster(
            self.BOUNDS,
            seed=config.seed,
            drop_probability=config.drop_probability,
            config=node_config,
        )
        self.auditor = self.cluster.attach_auditor(
            interval=config.audit_interval
        )
        #: Object ids stored (and acked) before the faults began.
        self.committed: Set[str] = set()
        self._versions: Dict[str, int] = {}
        self._points: Dict[str, Point] = {}
        #: In-band detection bookkeeping (the telemetry-plane contract).
        self.fault_start: Optional[float] = None
        self.gray_expected = None  # NodeAddress of the injected gray node
        self.detect_time: Optional[float] = None
        self.detect_flaggers: Set[str] = set()
        self.false_positives: Set[str] = set()

    # -- build phase ---------------------------------------------------
    def populate(self) -> None:
        config = self.config
        for index in range(config.population):
            coord = Point(
                self.rng.uniform(1.0, self.BOUNDS.x2 - 1.0),
                self.rng.uniform(1.0, self.BOUNDS.y2 - 1.0),
            )
            self.cluster.join_node(
                coord, capacity=self.rng.choice([1.0, 10.0, 100.0])
            )
        self.cluster.settle(config.warmup)
        for index in range(config.objects):
            object_id = f"obj-{index}"
            point = Point(
                self.rng.uniform(0.5, self.BOUNDS.x2 - 0.5),
                self.rng.uniform(0.5, self.BOUNDS.y2 - 0.5),
            )
            origin = self._random_live_node()
            # Synchronous write with application-level retries: the
            # object must verifiably exist before faults may eat it.
            self.cluster.store_update(
                origin.node.node_id, object_id, point, version=0,
            )
            self.committed.add(object_id)
            self._versions[object_id] = 0
            self._points[object_id] = point
        self.cluster.settle(10.0)

    # -- fault-phase helpers -------------------------------------------
    def begin_faults(self, gray_victim=None) -> None:
        """Mark fault injection; the detection clock starts here."""
        self.fault_start = self.cluster.scheduler.now
        if gray_victim is not None:
            self.gray_expected = gray_victim.address

    def poll_detection(self) -> None:
        """Read every live node's health flags (observation only).

        Strictly read-only: flags are computed from each node's existing
        health view, no rng is consumed, and nothing protocol-visible
        changes -- seeded runs stay byte-identical whether or not anyone
        polls.  Any flag naming the injected gray victim counts as a
        detection; any other flag, in any scenario, is a false positive.
        """
        now = self.cluster.scheduler.now
        live = [
            node
            for node in self.cluster.nodes.values()
            if node.alive and node.joined
        ]
        live.sort(key=lambda node: (node.address.ip, node.address.port))
        for node in live:
            for flagged in node.health_flags():
                if (
                    self.gray_expected is not None
                    and flagged == self.gray_expected
                ):
                    if self.detect_time is None:
                        self.detect_time = now
                    self.detect_flaggers.add(str(node.address))
                else:
                    self.false_positives.add(
                        f"{node.address}->{flagged}"
                    )

    def traffic_slice(self, duration: float, updates: int = 4) -> None:
        """Advance time while fire-and-forget update traffic flows.

        Updates ride normal routing (per-hop reliable) with no
        application retry, so this is exactly the traffic the reliable
        layer must carry through the active faults.
        """
        for _ in range(updates):
            object_id = self.rng.choice(sorted(self.committed))
            version = self._versions[object_id] + 1
            point = Point(
                self.rng.uniform(0.5, self.BOUNDS.x2 - 0.5),
                self.rng.uniform(0.5, self.BOUNDS.y2 - 0.5),
            )
            origin = self._random_live_node()
            origin.store_update(
                object_id, point,
                version=version, prev_point=self._points[object_id],
            )
            self._versions[object_id] = version
            self._points[object_id] = point
        self.cluster.run_for(duration)
        # Every scenario's traffic loop doubles as the detection poll:
        # the gray scenario needs sightings, the other five need proof
        # of silence.
        self.poll_detection()

    def _random_live_node(self):
        live = [
            node
            for node in self.cluster.nodes.values()
            if node.alive and node.joined
        ]
        if not live:
            raise SimulationError("no live joined node to originate traffic")
        return self.rng.choice(live)

    def live_primaries(self) -> List:
        return [
            node
            for node in self.cluster.nodes.values()
            if node.alive
            and node.joined
            and node.owned is not None
            and node.owned.role == "primary"
        ]

    def rejoin_replacement(self, coord: Point, capacity: float = 10.0) -> None:
        """A crashed node's replacement coming back up at the same spot."""
        self.cluster.join_node(coord, capacity=capacity, settle_time=200.0)

    # -- verdict -------------------------------------------------------
    def verdict(self, name: str, detail: str) -> ScenarioResult:
        from repro.protocol.reliable import tally_stats

        config = self.config
        # A detection landing just after the heal still counts (scores
        # decay over the recovery, so poll before settling too).
        self.poll_detection()
        self.cluster.settle(config.recovery)
        self.poll_detection()
        first = {
            (violation.check, violation.subject): violation
            for violation in self.auditor.run_checks()
        }
        # One audit interval later: anything still broken the same way is
        # frozen damage, not repair traffic.
        self.cluster.run_for(config.audit_interval * 2)
        second = {
            (violation.check, violation.subject)
            for violation in self.auditor.run_checks()
        }
        persistent = sorted(
            str(violation)
            for key, violation in first.items()
            if key in second
        )
        surviving: Set[str] = set()
        for node in self.cluster.nodes.values():
            if node.alive and node.owned is not None:
                for record in node.owned.store.records():
                    surviving.add(record.object_id)
        lost = sorted(self.committed - surviving)
        stats = tally_stats(
            node.reliable for node in self.cluster.nodes.values()
        )
        if lost:
            suffix = f"; lost: {', '.join(lost[:5])}"
            detail = detail + suffix if detail else suffix.lstrip("; ")
        # In-band detection verdict: the gray scenario must have flagged
        # its victim within the tick budget; nobody, in any scenario,
        # may have flagged anyone else.
        heartbeat = self.cluster.config.heartbeat_interval
        detect_ticks: Optional[float] = None
        detected_in_budget = True
        if self.gray_expected is not None:
            if self.detect_time is not None and self.fault_start is not None:
                detect_ticks = round(
                    (self.detect_time - self.fault_start) / heartbeat, 2
                )
                detected_in_budget = (
                    detect_ticks <= config.detection_budget_ticks
                )
            else:
                detected_in_budget = False
            if self.detect_time is not None:
                detail += (
                    f"; flagged in-band by {len(self.detect_flaggers)} "
                    f"node(s) after {detect_ticks:g} heartbeat tick(s)"
                )
            else:
                detail += "; NOT flagged in-band"
        false_positives = sorted(self.false_positives)
        return ScenarioResult(
            name=name,
            seed=config.seed,
            ok=(
                not persistent
                and not lost
                and not false_positives
                and detected_in_budget
            ),
            violations=persistent,
            lost_objects=len(lost),
            objects=len(self.committed),
            dead_letters=stats["dead_lettered"],
            retries=stats["retries"],
            acked=stats["acked"],
            duplicates=stats["duplicates"],
            sim_time=self.cluster.scheduler.now,
            detail=detail,
            gray_expected=(
                str(self.gray_expected)
                if self.gray_expected is not None
                else None
            ),
            detect_ticks=detect_ticks,
            detect_budget=(
                config.detection_budget_ticks
                if self.gray_expected is not None
                else None
            ),
            false_positives=false_positives,
        )


class _PubSubArena(_Arena):
    """An :class:`_Arena` carrying a committed continuous-query load.

    The pubsub campaign runs every scenario with this arena instead of
    the plain one.  During :meth:`populate` a population of standing
    queries is registered *synchronously* (every registration acked, so
    the subscriptions are committed before any fault exists) and a
    pre-fault burst of targeted events proves baseline delivery under
    the ambient drop rate.  The verdict then lets the scenario's
    restructuring finish and publishes a post-heal burst: an
    oracle-expected notification that never arrives despite
    application-level publish retries means a committed lease was
    stranded -- exactly the failure the partition-following handoffs
    must prevent.  All pubsub randomness comes from its own stream
    (``seed:scenario:pubsub``), so the underlying fault schedule is the
    same one the plain campaign runs.
    """

    def __init__(self, config: ChaosConfig, scenario: str) -> None:
        from repro.workload.subscriptions import SubscriptionWorkload

        super().__init__(config, scenario)
        self.pubsub_rng = random.Random(f"{config.seed}:{scenario}:pubsub")
        self.pubsub = SubscriptionWorkload(
            self.BOUNDS,
            subscriptions=config.subscriptions,
            rng=self.pubsub_rng,
            # Leases must outlive the scenario: expiry correctness has
            # its own regression tests; this campaign tests survival.
            duration=1_000_000.0,
            hit_ratio=0.7,
        )
        #: Workload name -> (subscriber node id, protocol sub id, rect).
        self.sub_homes: Dict[str, tuple] = {}
        self.expected_notifications = 0
        self.lost_pairs: List[str] = []

    def populate(self) -> None:
        super().populate()
        clients = sorted(
            (
                node
                for node in self.cluster.nodes.values()
                if node.alive and node.joined
            ),
            key=lambda node: (node.address.ip, node.address.port),
        )
        for op in self.pubsub.initial_subscriptions():
            client = clients[op.subscriber % len(clients)]
            sub_id, _ack = self.cluster.subscribe(
                client.node.node_id, op.rect, duration=op.duration
            )
            self.sub_homes[op.name] = (client.node.node_id, sub_id, op.rect)
        self.cluster.settle(10.0)
        # The pre-fault committed burst: delivery must work under the
        # ambient drop rate before faults are allowed to complicate it.
        self.publish_burst(self.config.pubsub_events)

    # -- event side ----------------------------------------------------
    def publish_burst(
        self, count: int, attempts: int = 4, wait: float = 15.0
    ) -> None:
        """Publish ``count`` events and assert oracle-expected delivery.

        PUBLISH routing is fire-and-forget (only the NOTIFY leg rides
        the reliable channel), so on a lossy network the application
        retries the publish -- each retry is a distinct event, and the
        at-least-once contract makes the duplicates harmless.  A pair
        still missing after every attempt is recorded as lost.
        """
        for op in self.pubsub.publish_step(count):
            expected = []
            for name in sorted(self.sub_homes):
                node_id, sub_id, rect = self.sub_homes[name]
                if not self.cluster.nodes[node_id].alive:
                    continue  # the subscribing client itself died
                if rect.covers(
                    op.point, closed_low_x=True, closed_low_y=True
                ):
                    expected.append((name, node_id, sub_id))
            self.expected_notifications += len(expected)
            if not expected:
                continue
            missing = list(expected)
            for _ in range(attempts):
                publisher = self._random_live_pubsub_node()
                publisher.publish(op.point, op.payload)
                self.cluster.run_for(wait)
                missing = [
                    entry
                    for entry in missing
                    if not self._delivered(entry[1], entry[2], op.payload)
                ]
                if not missing:
                    break
            for name, _node_id, _sub_id in missing:
                self.lost_pairs.append(f"{name}->{op.payload}")

    def _delivered(self, node_id: int, sub_id: str, payload) -> bool:
        return any(
            note.sub_id == sub_id and note.payload == payload
            for note in self.cluster.nodes[node_id].notifications
        )

    def _random_live_pubsub_node(self):
        live = [
            node
            for node in self.cluster.nodes.values()
            if node.alive and node.joined
        ]
        if not live:
            raise SimulationError("no live joined node to publish from")
        return self.pubsub_rng.choice(live)

    # -- verdict -------------------------------------------------------
    def verdict(self, name: str, detail: str) -> ScenarioResult:
        # Let the scenario's restructuring finish first, then prove the
        # committed queries still deliver: the post-heal burst *is* the
        # partition-following assertion.
        self.cluster.settle(self.config.recovery)
        self.publish_burst(self.config.pubsub_events)
        result = super().verdict(name, detail)
        result.expected_notifications = self.expected_notifications
        result.lost_notifications = len(self.lost_pairs)
        if self.lost_pairs:
            result.ok = False
            result.detail += "; lost notifications: " + ", ".join(
                self.lost_pairs[:5]
            )
        return result


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def _scenario_asymmetric_partition(
    config: ChaosConfig, arena: Optional[_Arena] = None
) -> ScenarioResult:
    """One direction of a primary-to-primary link silently eats traffic."""
    arena = arena if arena is not None else _Arena(
        config, "asymmetric_partition"
    )
    arena.populate()
    primaries = arena.live_primaries()
    a, b = arena.rng.sample(primaries, 2)
    network = arena.cluster.network
    arena.begin_faults()
    network.block_one_way(a.address, b.address)
    slices = max(4, int(config.fault_duration / 10.0))
    for _ in range(slices):
        arena.traffic_slice(config.fault_duration / slices)
    network.heal_partitions()
    return arena.verdict(
        "asymmetric_partition",
        f"blocked {a.address} -> {b.address} (reverse path stayed up)",
    )


def _scenario_gray_failure(
    config: ChaosConfig, arena: Optional[_Arena] = None
) -> ScenarioResult:
    """One endpoint drops 25% and delays 50% of its traffic, both ways."""
    arena = arena if arena is not None else _Arena(config, "gray_failure")
    arena.populate()
    victim = arena.rng.choice(arena.live_primaries())
    network = arena.cluster.network
    arena.begin_faults(gray_victim=victim)
    network.set_gray(
        victim.address,
        drop_fraction=0.25,
        extra_delay=1.5,
        delay_fraction=0.5,
    )
    # Gray failures are *persistent* -- that is what distinguishes them
    # from a transient storm -- so the affliction outlives the generic
    # fault window.  The detection budget still bounds the SLA: the
    # verdict fails unless the victim is flagged in-band within
    # ``detection_budget_ticks`` heartbeat intervals of injection.
    window = 2.0 * config.fault_duration
    # Fine-grained slices (with the update rate held constant) so the
    # detection poll sees a flag within a tick of it first firing.
    slices = max(8, int(window / 5.0))
    for _ in range(slices):
        arena.traffic_slice(window / slices, updates=2)
    network.clear_gray(victim.address)
    return arena.verdict(
        "gray_failure",
        f"{victim.address} dropped 25% / delayed 50% of its traffic",
    )


def _scenario_crash_restart(
    config: ChaosConfig, arena: Optional[_Arena] = None
) -> ScenarioResult:
    """A primary dies abruptly; a replacement rejoins at the same spot."""
    arena = arena if arena is not None else _Arena(config, "crash_restart")
    arena.populate()
    # Crash a *replicated* primary: a solo primary's store has no other
    # copy anywhere, so losing it is by design, not a protocol failure
    # (the guarantee under test is that the secondary takes over).
    replicated = [
        primary
        for primary in arena.live_primaries()
        if primary.owned is not None and primary.owned.peer is not None
    ]
    victim = arena.rng.choice(replicated or arena.live_primaries())
    coord = victim.node.coord
    arena.begin_faults()
    arena.cluster.crash_node(victim.node.node_id)
    slices = max(4, int(config.fault_duration / 10.0))
    for _ in range(slices):
        arena.traffic_slice(config.fault_duration / slices)
    arena.rejoin_replacement(coord)
    return arena.verdict(
        "crash_restart",
        f"crashed {victim.address}, rejoined a replacement at {coord}",
    )


def _scenario_regional_outage(
    config: ChaosConfig, arena: Optional[_Arena] = None
) -> ScenarioResult:
    """Every region touching one quadrant loses an owner at once.

    At most one owner per region crashes, so each affected region's data
    survives on its other owner -- the correlated-failure shape a real
    rack or availability-zone outage produces.
    """
    arena = arena if arena is not None else _Arena(config, "regional_outage")
    arena.populate()
    bounds = arena.BOUNDS
    quadrant = Rect(
        bounds.x, bounds.y, bounds.width / 2.0, bounds.height / 2.0
    )
    crashed: List[str] = []
    arena.begin_faults()
    for primary in arena.live_primaries():
        if not primary.owned.rect.intersects(quadrant):
            continue
        arena.cluster.crash_node(primary.node.node_id)
        crashed.append(str(primary.address))
        if len(crashed) >= max(1, config.population // 3):
            break  # an outage, not an extinction
    slices = max(4, int(config.fault_duration / 10.0))
    for _ in range(slices):
        arena.traffic_slice(config.fault_duration / slices)
    # The zone comes back: fresh capacity rejoins inside the quadrant.
    for _ in crashed:
        arena.rejoin_replacement(
            Point(
                arena.rng.uniform(quadrant.x + 1.0, quadrant.x2 - 1.0),
                arena.rng.uniform(quadrant.y + 1.0, quadrant.y2 - 1.0),
            )
        )
    return arena.verdict(
        "regional_outage",
        f"crashed {len(crashed)} primaries in {quadrant}: "
        + ", ".join(crashed),
    )


def _scenario_drop_latency_spike(
    config: ChaosConfig, arena: Optional[_Arena] = None
) -> ScenarioResult:
    """Network-wide congestion: loss triples and every delivery slows."""
    arena = arena if arena is not None else _Arena(
        config, "drop_latency_spike"
    )
    arena.populate()
    network = arena.cluster.network
    normal_drop = network.drop_probability
    arena.begin_faults()
    network.drop_probability = min(0.45, max(0.15, normal_drop * 3.0))
    network.extra_latency += 2.0
    slices = max(4, int(config.fault_duration / 10.0))
    for _ in range(slices):
        arena.traffic_slice(config.fault_duration / slices)
    network.drop_probability = normal_drop
    network.extra_latency -= 2.0
    return arena.verdict(
        "drop_latency_spike",
        "drop tripled to "
        f"{min(0.45, max(0.15, normal_drop * 3.0)):g}, +2.0 latency on "
        "every delivery",
    )


def _scenario_churn_storm(
    config: ChaosConfig, arena: Optional[_Arena] = None
) -> ScenarioResult:
    """A Poisson burst of joins, departures and crashes."""
    from repro.sim.churn import ChurnConfig, ChurnProcess

    arena = arena if arena is not None else _Arena(config, "churn_storm")
    arena.populate()
    cluster = arena.cluster

    def spawn() -> bool:
        coord = Point(
            arena.rng.uniform(1.0, arena.BOUNDS.x2 - 1.0),
            arena.rng.uniform(1.0, arena.BOUNDS.y2 - 1.0),
        )
        # Fire-and-forget: the join completes (or retries) on the
        # scheduler; churn callbacks must never re-enter the event loop.
        node = cluster.spawn_node(coord, capacity=arena.rng.choice([1.0, 10.0]))
        node.start_join()
        return True

    def remove(graceful: bool) -> bool:
        # Only nodes whose region has a live counterpart may leave: a
        # solo primary's store exists nowhere else, so removing one
        # loses data *by design* (crash) or punches a permanent hole
        # (depart detaches without a handoff target).  The scenario
        # tests recovery from survivable churn, not those guarantees.
        alive = {
            node.address
            for node in cluster.nodes.values()
            if node.alive and node.joined
        }
        candidates = [
            node
            for node in cluster.nodes.values()
            if node.alive
            and node.joined
            and node.owned is not None
            and node.owned.peer in alive
        ]
        if len(candidates) <= 4:
            return False
        victim = arena.rng.choice(candidates)
        if graceful:
            victim.depart()
        else:
            victim.crash()
        return True

    churn = ChurnProcess(
        cluster.scheduler,
        random.Random(f"{config.seed}:churn_storm:process"),
        ChurnConfig(
            join_rate=0.25,
            leave_rate=0.1,
            fail_rate=0.1,
            min_population=4,
            max_population=config.population * 2,
        ),
        spawn=spawn,
        remove=remove,
        population=cluster.alive_count,
    )
    arena.begin_faults()
    churn.start()
    slices = max(4, int(config.fault_duration / 10.0))
    for _ in range(slices):
        arena.traffic_slice(config.fault_duration / slices)
    churn.stop()
    return arena.verdict(
        "churn_storm",
        f"churn: {churn.joins} joins, {churn.departures} departures, "
        f"{churn.failures} crashes ({churn.suppressed} suppressed)",
    )


#: Per-node ingress queue-depth ceiling the flash_crowd scenario must
#: stay under while the storm runs.  Deterministic for a given seed, so
#: this is a regression bound, not a statistical one: with admission
#: control on, the observed peak stays far below (the shed feedback
#: starves the amplification the storm would otherwise feed).
FLASH_CROWD_QUEUE_BOUND = 192

#: Storm operations aimed at the crowd per traffic slice -- 10x the
#: ambient slice's 4 updates.
FLASH_CROWD_STORM_OPS = 40


def _scenario_flash_crowd(
    config: ChaosConfig, arena: Optional[_Arena] = None
) -> ScenarioResult:
    """A query storm drives 10x ambient load at one weak region.

    The arena runs with the overload plane enabled
    (``NodeConfig.overload_enabled``): the crowd centers on the weakest
    live primary (smallest capacity, hence smallest admission budget),
    so data-plane queries must shed while committed store objects,
    control traffic and the invariant suite stay untouched.  The
    verdict additionally asserts the overload contract: something was
    shed, *no* control-class message was shed, and every node's ingress
    queue depth stayed under :data:`FLASH_CROWD_QUEUE_BOUND`.  When an
    outer campaign supplies its own arena (e.g. the pubsub campaign's),
    the storm still runs but the overload contract is skipped -- that
    arena's cluster has the plane disabled, which is precisely the
    graceful-degradation ablation.
    """
    from repro.protocol import overload
    from repro.protocol.node import NodeConfig
    from repro.workload.hotspot import HotspotField

    overload_on = arena is None
    arena = arena if arena is not None else _Arena(
        config,
        "flash_crowd",
        node_config=NodeConfig(overload_enabled=True),
    )
    arena.populate()
    cluster = arena.cluster
    network = cluster.network
    # The crowd gathers over the weakest primary: smallest capacity =
    # smallest admission budget, so this is the node the plane must
    # protect.  Deterministic tie-break by address.
    hot = min(
        arena.live_primaries(),
        key=lambda node: (
            node.node.capacity, node.address.ip, node.address.port
        ),
    )
    storm_rng = random.Random(f"{config.seed}:flash_crowd:storm")
    field = HotspotField.flash_crowd(
        arena.BOUNDS,
        storm_rng,
        center=hot.owned.rect.center,
        burst_radius=max(1.0, min(hot.owned.rect.width,
                                  hot.owned.rect.height) / 2.0),
        intensity=10.0,
        ambient=3,
    )
    # The bound covers the storm and recovery, not join-time churn.
    network.reset_peak_in_flight()
    arena.begin_faults()
    slices = max(4, int(config.fault_duration / 10.0))
    for index in range(slices):
        live = sorted(
            (
                node
                for node in cluster.nodes.values()
                if node.alive and node.joined
            ),
            key=lambda node: (node.address.ip, node.address.port),
        )
        for op in range(FLASH_CROWD_STORM_OPS):
            point = field.sample_point(storm_rng)
            origin = storm_rng.choice(live)
            if op % 2:
                origin.send_to_point(point, "crowd")
            else:
                origin.store_lookup(
                    Rect(
                        max(arena.BOUNDS.x, point.x - 2.0),
                        max(arena.BOUNDS.y, point.y - 2.0),
                        4.0,
                        4.0,
                    )
                )
        arena.traffic_slice(config.fault_duration / slices)
        if index == slices // 2 - 1:
            # Mid-storm the crowd drifts (the epoch-migration knob):
            # the hotspot the plane defends is a moving target.
            field.migrate_epoch(storm_rng)
    result = arena.verdict(
        "flash_crowd",
        f"10x storm at {hot.address} (capacity {hot.node.capacity:g}, "
        f"rect {hot.owned.rect if hot.owned else 'moved'})",
    )
    nodes = list(cluster.nodes.values())
    control_kinds = {
        kind
        for kind, priority in overload.PRIORITY_OF.items()
        if priority in (overload.PRIORITY_CONTROL, overload.PRIORITY_ACK)
    }
    result.sheds = sum(node.sheds for node in nodes)
    result.deflections = sum(node.deflections for node in nodes)
    result.control_sheds = sum(
        count
        for node in nodes
        for kind, count in node.shed_by_kind.items()
        if kind in control_kinds
    )
    result.peak_queue_depth = network.max_peak_in_flight()
    result.queue_bound = FLASH_CROWD_QUEUE_BOUND
    if overload_on:
        problems = []
        if result.sheds == 0:
            problems.append("storm provoked no shedding")
        if result.control_sheds:
            problems.append(
                f"{result.control_sheds} control-class message(s) shed"
            )
        if result.peak_queue_depth > result.queue_bound:
            problems.append(
                f"peak queue depth {result.peak_queue_depth} exceeded "
                f"bound {result.queue_bound}"
            )
        if problems:
            result.ok = False
            result.detail += "; " + "; ".join(problems)
    return result


#: Every scenario the campaign knows, in execution order.
SCENARIOS: Dict[str, Callable[[ChaosConfig], ScenarioResult]] = {
    "asymmetric_partition": _scenario_asymmetric_partition,
    "gray_failure": _scenario_gray_failure,
    "crash_restart": _scenario_crash_restart,
    "regional_outage": _scenario_regional_outage,
    "drop_latency_spike": _scenario_drop_latency_spike,
    "churn_storm": _scenario_churn_storm,
    "flash_crowd": _scenario_flash_crowd,
}


def run_scenario(
    name: str, config: Optional[ChaosConfig] = None
) -> ScenarioResult:
    """Run one named scenario (see :data:`SCENARIOS`)."""
    if name not in SCENARIOS:
        raise ConfigurationError(
            f"unknown chaos scenario {name!r}; known: {sorted(SCENARIOS)}"
        )
    return SCENARIOS[name](config if config is not None else ChaosConfig())


def run_campaign(
    config: Optional[ChaosConfig] = None,
    scenarios: Optional[Sequence[str]] = None,
) -> CampaignReport:
    """Run the full seeded fault campaign (or a named subset)."""
    config = config if config is not None else ChaosConfig()
    names = list(scenarios) if scenarios is not None else list(SCENARIOS)
    report = CampaignReport(seed=config.seed)
    for name in names:
        report.results.append(run_scenario(name, config))
    return report


def run_pubsub_campaign(
    config: Optional[ChaosConfig] = None,
    scenarios: Optional[Sequence[str]] = None,
) -> CampaignReport:
    """The fault campaign with a committed continuous-query load on top.

    Every scenario runs its usual fault schedule against a
    :class:`_PubSubArena`: subscriptions registered and acked before the
    faults, a delivery-asserted event burst before and after.  On top of
    the plain campaign's verdict, a scenario fails if any
    oracle-expected notification was lost
    (``lost_notifications`` must be 0 everywhere).
    """
    config = config if config is not None else ChaosConfig()
    names = list(scenarios) if scenarios is not None else list(SCENARIOS)
    report = CampaignReport(seed=config.seed)
    for name in names:
        if name not in SCENARIOS:
            raise ConfigurationError(
                f"unknown chaos scenario {name!r}; known: "
                f"{sorted(SCENARIOS)}"
            )
        arena = _PubSubArena(config, name)
        report.results.append(SCENARIOS[name](config, arena=arena))
    return report


# ----------------------------------------------------------------------
# Reliable-layer overhead
# ----------------------------------------------------------------------
def measure_reliable_overhead(
    population: int = 10,
    operations: int = 40,
    seed: int = 7,
) -> Dict[str, float]:
    """Wall-clock cost of the reliable layer on a loss-free network.

    Runs the identical build-and-update workload twice -- reliable
    channel enabled vs disabled -- on a lossless transport, where every
    ack round-trip is pure overhead.  Returns ``enabled_s``,
    ``disabled_s`` and their ``ratio`` (the instrumentation contract is
    ratio < 1.10).
    """
    from repro.protocol.cluster import ProtocolCluster
    from repro.protocol.node import NodeConfig

    def workload(reliable_enabled: bool) -> float:
        rng = random.Random(seed)
        cluster = ProtocolCluster(
            _Arena.BOUNDS,
            seed=seed,
            config=NodeConfig(reliable_enabled=reliable_enabled),
        )
        started = time.perf_counter()
        for _ in range(population):
            cluster.join_node(
                Point(rng.uniform(1.0, 63.0), rng.uniform(1.0, 63.0)),
                capacity=rng.choice([1.0, 10.0, 100.0]),
            )
        cluster.settle(30.0)
        for index in range(operations):
            origin = rng.choice(
                [n for n in cluster.nodes.values() if n.alive and n.joined]
            )
            cluster.store_update(
                origin.node.node_id,
                f"obj-{index % 8}",
                Point(rng.uniform(0.5, 63.5), rng.uniform(0.5, 63.5)),
                version=index,
            )
        cluster.settle(20.0)
        return time.perf_counter() - started

    # Warm both paths once (imports, allocator) before timing.
    disabled_s = min(workload(False), workload(False))
    enabled_s = min(workload(True), workload(True))
    return {
        "enabled_s": enabled_s,
        "disabled_s": disabled_s,
        "ratio": enabled_s / disabled_s if disabled_s > 0 else 1.0,
    }
