"""Exception hierarchy for the GeoGrid reproduction.

All library-specific errors derive from :class:`GeoGridError` so that
callers can catch everything the library raises with a single clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class GeoGridError(Exception):
    """Base class for all errors raised by this library."""


class GeometryError(GeoGridError):
    """Invalid geometric operation (illegal merge, degenerate rectangle...)."""


class PartitionError(GeoGridError):
    """The space partition would be violated by the requested operation."""


class RoutingError(GeoGridError):
    """A routing request could not be delivered."""


class MembershipError(GeoGridError):
    """Invalid join/leave/failure operation (unknown node, duplicate join...)."""


class OwnershipError(GeoGridError):
    """Invalid primary/secondary ownership manipulation."""


class AdaptationError(GeoGridError):
    """A load-balance adaptation plan could not be applied."""


class BootstrapError(GeoGridError):
    """The bootstrap service could not provide an entry point."""


class TransportError(GeoGridError):
    """Simulated-network transport failure (unknown endpoint, closed...)."""


class SimulationError(GeoGridError):
    """Discrete-event simulation misuse (time travel, re-entrant run...)."""


class ConfigurationError(GeoGridError):
    """Invalid experiment or system configuration."""
